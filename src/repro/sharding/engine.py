"""ShardedEngine: scatter-gather search over a set of per-shard indexes.

Each shard is a full :class:`~repro.core.engine.OasisEngine` over its slice
of the database (in-memory trees for :meth:`ShardedEngine.build`, disk images
behind buffer pools for :meth:`ShardedEngine.open`).  A query is fanned out
across the shards on a shared thread pool and the per-shard results are
merged into one globally ordered :class:`~repro.core.results.SearchResult`.

Correctness of the merge rests on three invariants:

* every shard prunes against the **global** E-value threshold: all shards
  share one :class:`~repro.core.evalue.SelectivityConverter` built from the
  whole database, so Equation 3 yields the same ``min_score`` everywhere and
  Equation 2 annotates every hit with the E-value the monolithic engine would
  have computed;
* a sequence lives in exactly one shard, so the union of per-shard hit sets
  *is* the monolithic hit set (per-sequence best scores are a property of the
  sequence, not of the index layout), with shard-local sequence indices
  remapped to global ones through the catalog's contiguous ranges;
* every engine orders hits canonically
  (:func:`~repro.core.results.hit_order_key`), so the merged, re-sorted hit
  list is byte-for-byte identical to the monolithic one.

The parity test in ``tests/test_sharding.py`` checks all three at once.
"""

from __future__ import annotations

import heapq
import os
import threading
import time
from bisect import bisect_right
from concurrent.futures import BrokenExecutor
from concurrent.futures import wait as futures_wait
from typing import TYPE_CHECKING, Iterable, Iterator, List, Optional, Union

from repro.core.engine import OasisEngine
from repro.core.evalue import SelectivityConverter
from repro.core.oasis import OasisSearchStatistics, QueryExecution
from repro.core.results import SearchHit, SearchResult, hit_order_key
from repro.exec import BackendSpec, ExecutionBackend, resolve_backend
from repro.obs.logsetup import get_logger
from repro.scoring.gaps import FixedGapModel, GapModel
from repro.scoring.matrix import SubstitutionMatrix
from repro.sequences.database import SequenceDatabase
from repro.sharding.builder import ShardedIndexBuilder
from repro.sharding.catalog import ShardCatalog, config_fingerprint
from repro.sharding.planner import ShardPlanner, ShardSpec, slice_shard
from repro.sharding.remote import (
    ShardSearchTask,
    run_shard_search,
    unpack_alignment,
)
from repro.storage.blocks import BLOCK_SIZE_DEFAULT
from repro.storage.disk_tree import DEFAULT_BUFFER_POOL_BYTES, DiskSuffixTree
from repro.suffixtree.generalized import GeneralizedSuffixTree

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.parallel.executor import BatchSearchReport

PathLike = Union[str, os.PathLike]

logger = get_logger(__name__)


class ShardedQueryExecution:
    """One query scattered across every shard, gathered into one result.

    Mirrors the :class:`~repro.core.oasis.QueryExecution` surface the batch
    executor relies on: iterate it for the online stream (a lazy k-way merge
    of the per-shard streams, globally ordered because each shard emits in
    canonical order) or call :meth:`result` to run all shards concurrently on
    the engine's shard pool and collect the merged batch result.
    """

    def __init__(
        self,
        engine: "ShardedEngine",
        executions: List[QueryExecution],
        query: str,
        max_results: Optional[int],
        time_budget: Optional[float] = None,
        tracer=None,
    ):
        self.engine = engine
        self.executions = executions
        self.query = query
        self.max_results = max_results
        self.time_budget = time_budget
        self.tracer = tracer
        #: Explicit parent for the query span (a batch executor sets it so
        #: queries running on pool threads still nest under the batch span).
        self.trace_parent: Optional[str] = None
        self._iterator: Optional[Iterator[SearchHit]] = None
        self._collected: List[SearchHit] = []
        self._start_time: Optional[float] = None
        self._wall_seconds = 0.0
        self._result: Optional[SearchResult] = None

    # ------------------------------------------------------------------ #
    # Flags and statistics
    # ------------------------------------------------------------------ #
    @property
    def timed_out(self) -> bool:
        return any(execution.timed_out for execution in self.executions)

    @property
    def aborted(self) -> bool:
        return any(execution.aborted for execution in self.executions)

    @property
    def statistics(self) -> OasisSearchStatistics:
        """Work counters summed over all shards (queue peak is the max)."""
        merged = OasisSearchStatistics()
        if self.executions:
            merged.kernel = self.executions[0].statistics.kernel
        for execution in self.executions:
            shard = execution.statistics
            merged.columns_expanded += shard.columns_expanded
            merged.nodes_expanded += shard.nodes_expanded
            merged.nodes_enqueued += shard.nodes_enqueued
            merged.nodes_accepted += shard.nodes_accepted
            merged.nodes_pruned += shard.nodes_pruned
            merged.pruned_non_positive += shard.pruned_non_positive
            merged.pruned_dominated += shard.pruned_dominated
            merged.pruned_threshold += shard.pruned_threshold
            merged.max_queue_size = max(merged.max_queue_size, shard.max_queue_size)
            merged.buffer_hits += shard.buffer_hits
            merged.buffer_misses += shard.buffer_misses
            merged.buffer_evictions += shard.buffer_evictions
        merged.elapsed_seconds = self._wall_seconds
        return merged

    def _label_shard_executions(self, parent_id: Optional[str]) -> None:
        """Re-label each shard execution's span before any of them starts."""
        for shard, execution in enumerate(self.executions):
            execution.trace_name = "shard"
            execution.trace_parent = parent_id
            execution.trace_attributes = {"shard": shard, "phase": "shard"}

    def abort(self) -> None:
        for execution in self.executions:
            execution.abort()

    def _pin_deadline(self) -> None:
        """Share one absolute deadline across all shard executions.

        A per-execution relative budget would restart whenever a shard task
        leaves the pool queue, granting a loaded batch up to
        ``shard_count x budget`` per query; pinning ``now + budget`` before
        anything is submitted keeps the budget a true per-query wall clock.
        """
        if self.time_budget is None:
            return
        deadline = time.perf_counter() + self.time_budget
        for execution in self.executions:
            execution.set_deadline(deadline)

    # ------------------------------------------------------------------ #
    # Streaming (online) interface
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[SearchHit]:
        if self._iterator is None:
            self._iterator = self._generate()
        return self._iterator

    def __next__(self) -> SearchHit:
        return next(iter(self))

    def _shard_stream(self, shard: int, execution: QueryExecution) -> Iterator[SearchHit]:
        offset = self.engine.sequence_offset(shard)
        for hit in execution:
            hit.sequence_index += offset
            yield hit

    def _generate(self) -> Iterator[SearchHit]:
        """Lazy k-way merge of the shard streams, globally strongest-first.

        The shard executions run interleaved on the calling thread (the
        paper's online consumption model); only :meth:`result` uses the shard
        pool.  Each shard stream is sorted by the canonical hit order, so the
        merge is too.
        """
        self._start_time = time.perf_counter()
        self._pin_deadline()
        span = None
        if self.tracer is not None:
            if self.trace_parent is not None:
                span = self.tracer.span(
                    "query",
                    parent_id=self.trace_parent,
                    shards=len(self.executions),
                    streaming=True,
                    phase="scatter",
                )
            else:
                span = self.tracer.span(
                    "query", shards=len(self.executions), streaming=True, phase="scatter"
                )
            self.tracer._push(span)
            self._label_shard_executions(span.span_id)
        streams = [
            self._shard_stream(shard, execution)
            for shard, execution in enumerate(self.executions)
        ]
        try:
            emitted = 0
            for hit in heapq.merge(*streams, key=hit_order_key):
                self._collected.append(hit)
                yield hit
                emitted += 1
                if self.max_results is not None and emitted >= self.max_results:
                    return
        finally:
            self._wall_seconds = time.perf_counter() - self._start_time
            for stream in streams:
                stream.close()
            # Closing the wrappers does not close the shard executions
            # themselves; do it explicitly so their statistics are finalised
            # and an abandoned merge cannot silently resume work later.
            for execution in self.executions:
                execution.close()
            if span is not None:
                span.set_attribute("hits", len(self._collected))
                self.tracer._pop(span)
                span.finish()

    def close(self) -> None:
        """Abandon the merged stream (and with it every shard stream)."""
        if self._iterator is not None:
            self._iterator.close()

    def _merge_hits(self, shard_results: List[SearchResult]) -> List[SearchHit]:
        """Remap shard-local hits to global indices and order canonically."""
        hits: List[SearchHit] = []
        for shard, result in enumerate(shard_results):
            offset = self.engine.sequence_offset(shard)
            for hit in result.hits:
                hit.sequence_index += offset
                hits.append(hit)
        hits.sort(key=hit_order_key)
        if self.max_results is not None:
            hits = hits[: self.max_results]
        return hits

    # ------------------------------------------------------------------ #
    # Batch interface
    # ------------------------------------------------------------------ #
    def result(self) -> SearchResult:
        """Run every shard (concurrently, unless already streaming) and merge.

        Memoised: the remap mutates the shard executions' hit objects in
        place, so the merge must run exactly once -- repeated calls return
        the same object, as :meth:`QueryExecution.result` effectively does.
        """
        if self._result is not None:
            return self._result
        start = time.perf_counter()
        if self._iterator is not None:
            # The consumer started streaming: finish draining that stream
            # (hits were collected as they were emitted) rather than
            # re-running the shards.
            for _ in self._iterator:
                pass
            hits = list(self._collected)
        else:
            span = None
            tracer = self.tracer
            if tracer is not None:
                if self.trace_parent is not None:
                    span = tracer.span(
                        "query",
                        parent_id=self.trace_parent,
                        shards=len(self.executions),
                        phase="scatter",
                    )
                else:
                    span = tracer.span(
                        "query", shards=len(self.executions), phase="scatter"
                    )
                tracer._push(span)
                # Shard executions may run on pool threads (or in worker
                # processes); their spans parent under the query span by
                # explicit id, not by thread-local nesting.
                self._label_shard_executions(span.span_id)
            try:
                self._pin_deadline()
                shard_results = self.engine._scatter(self.executions)
                self._wall_seconds = time.perf_counter() - start
                if span is None:
                    hits = self._merge_hits(shard_results)
                else:
                    with tracer.span(
                        "merge", parent_id=span.span_id, phase="merge"
                    ) as merge_span:
                        hits = self._merge_hits(shard_results)
                        merge_span.set_attribute("hits", len(hits))
            finally:
                if span is not None:
                    span.set_attribute("timed_out", self.timed_out)
                    span.set_attribute("aborted", self.aborted)
                    tracer._pop(span)
                    span.finish()

        # Per-shard hit counts reflect the *merged* result: with max_results,
        # a shard's emitted top-k may exceed what survives the global
        # truncation, and the per-shard rows must sum to len(hits).
        survived = [0] * len(self.executions)
        offsets = self.engine._offsets
        for hit in hits:
            survived[bisect_right(offsets, hit.sequence_index) - 1] += 1

        shard_stats = [
            {
                "shard": shard,
                "hits": survived[shard],
                "columns_expanded": execution.statistics.columns_expanded,
                "nodes_expanded": execution.statistics.nodes_expanded,
                "elapsed_seconds": execution.statistics.elapsed_seconds,
                "timed_out": execution.timed_out,
                "aborted": execution.aborted,
            }
            for shard, execution in enumerate(self.executions)
        ]

        merged = SearchResult(
            query=self.query.upper(),
            engine="oasis-sharded",
            hits=hits,
            elapsed_seconds=self._wall_seconds,
            columns_expanded=sum(
                execution.statistics.columns_expanded for execution in self.executions
            ),
            parameters={
                "min_score": self.executions[0].min_score,
                "matrix": self.engine.matrix.name,
                "gap": self.engine.gap_model.per_symbol,
                "max_results": self.max_results,
                "shards": len(self.executions),
                "shard_stats": shard_stats,
            },
            statistics=self.statistics,
        )
        if self.timed_out:
            merged.parameters["timed_out"] = True
        if self.aborted:
            merged.parameters["aborted"] = True
        self._result = merged
        return merged

    def __repr__(self) -> str:
        return (
            f"ShardedQueryExecution(query={self.query!r}, "
            f"shards={len(self.executions)})"
        )


#: Raised whenever a process scatter backend meets an engine with no catalog.
_PROCESS_NEEDS_CATALOG = (
    "a process scatter backend needs a persistent sharded index: "
    "worker processes open shard images from the catalog, which "
    "an in-memory engine does not have -- build one with "
    "ShardedIndexBuilder / build_on_disk and use ShardedEngine.open"
)


def _backend_kind(backend: "Union[str, BackendSpec, ExecutionBackend, None]") -> Optional[str]:
    """The kind a backend description resolves to, without creating anything."""
    if backend is None:
        return None
    if isinstance(backend, str):
        backend = BackendSpec.parse(backend)
    return backend.kind


def shard_pool_budgets(
    total_bytes: int, shard_residues: List[int], block_size: int
) -> List[int]:
    """Split one buffer-pool budget across shards, proportionally to size.

    Each shard gets a share of ``total_bytes`` proportional to its residue
    count (the catalog records them): index bytes and page working sets both
    scale with residues, so proportional shares keep every shard's hit ratio
    in the same regime where an even split would starve the big shards.
    Every shard is floored at one frame (``block_size`` bytes) -- a pool
    smaller than one block cannot hold a single page, so with a tiny total
    budget the floor deliberately oversubscribes rather than handing any
    shard a zero-frame pool.
    """
    if block_size < 1:
        raise ValueError("block_size must be positive")
    if not shard_residues:
        raise ValueError("at least one shard is required")
    total_residues = sum(shard_residues)
    if total_residues <= 0:
        # Degenerate catalog (cannot happen for real indexes; every shard
        # holds at least one non-empty sequence): fall back to an even split.
        even = total_bytes // len(shard_residues)
        return [max(block_size, even)] * len(shard_residues)
    return [
        max(block_size, total_bytes * residues // total_residues)
        for residues in shard_residues
    ]


class ShardedEngine:
    """Scatter-gather OASIS search over N per-shard indexes.

    Use :meth:`build` for an in-memory sharded engine, or
    :meth:`ShardedIndexBuilder.build` + :meth:`open` for the persistent form.
    The engine mirrors :class:`~repro.core.engine.OasisEngine`'s searching
    surface (``search`` / ``search_online`` / ``search_many`` / ``execute``),
    so every consumer of an engine -- the batch executor, the workload
    adapters, the CLI -- can run sharded without changes.

    ``backend`` selects the scatter strategy for :meth:`search` /
    :meth:`ShardedQueryExecution.result`: a spec string (``"serial"``,
    ``"threads:N"``, ``"processes:N"``), a
    :class:`~repro.exec.BackendSpec`, or a live
    :class:`~repro.exec.ExecutionBackend` (then caller-owned).  The default
    is a thread pool of ``workers`` threads -- right for disk-resident
    shards, whose miss stalls overlap.  A process backend escapes the GIL
    for CPU-bound (fully cached / in-memory regime) scatter: workers are
    shipped only ``(catalog directory, shard id, query, parameters)``, each
    worker process lazily opens its shard image read-only from the catalog,
    and raw hit tuples travel back for the parent to remap to global
    E-values and sequence indices.  It therefore requires a persistent
    index (a catalog directory); the streaming path
    (:meth:`search_online`) always runs in-process regardless of backend.
    """

    def __init__(
        self,
        shards: List[OasisEngine],
        database: SequenceDatabase,
        matrix: SubstitutionMatrix,
        gap_model: GapModel = FixedGapModel(-1),
        converter: Optional[SelectivityConverter] = None,
        catalog: Optional[ShardCatalog] = None,
        directory: Optional[str] = None,
        workers: Optional[int] = None,
        backend: Union[str, BackendSpec, ExecutionBackend, None] = None,
        shard_buffer_bytes: Optional[List[int]] = None,
        simulated_miss_latency: float = 0.0,
        sleep_on_miss: bool = False,
    ):
        if not shards:
            raise ValueError("a ShardedEngine needs at least one shard")
        self.shards = list(shards)
        self._database = database
        self.matrix = matrix
        self.gap_model = gap_model
        self.converter = converter or SelectivityConverter(matrix, database)
        self.catalog = catalog
        self.directory = directory
        self.workers = int(workers) if workers is not None else len(self.shards)
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        self._backend, self._backend_owned = resolve_backend(
            backend, default=f"threads:{self.workers}", default_workers=self.workers
        )
        if self._backend.kind == "processes" and self.directory is None:
            if self._backend_owned:
                self._backend.close()
            raise ValueError(_PROCESS_NEEDS_CATALOG)
        #: Per-shard buffer-pool budgets in bytes (persistent engines only).
        #: Process workers open their shard with the same budget, latency
        #: and sleep flag the parent gave that shard, so worker-side pools
        #: and I/O simulation match the parent's cursors.
        self.shard_buffer_bytes = (
            list(shard_buffer_bytes) if shard_buffer_bytes is not None else None
        )
        self.simulated_miss_latency = float(simulated_miss_latency)
        self.sleep_on_miss = bool(sleep_on_miss)
        #: Global sequence index of each shard's first sequence.
        self._offsets = self._compute_offsets()
        self._closed = False

    def _compute_offsets(self) -> List[int]:
        if self.catalog is not None:
            return [entry.start_sequence for entry in self.catalog.shards]
        offsets, position = [], 0
        for shard in self.shards:
            offsets.append(position)
            position += len(shard.database)
        return offsets

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        database: SequenceDatabase,
        matrix: SubstitutionMatrix,
        gap_model: GapModel = FixedGapModel(-1),
        shard_count: int = 2,
        by: str = "residues",
        workers: Optional[int] = None,
        backend: Union[str, BackendSpec, ExecutionBackend, None] = None,
        kernel=None,
    ) -> "ShardedEngine":
        """Split the database and build one in-memory index per shard.

        ``backend`` only accepts in-process kinds here (``serial`` /
        ``threads``): process scatter needs a catalog directory for its
        workers to open.
        """
        if _backend_kind(backend) == "processes":
            # Reject before the expensive per-shard tree construction; the
            # engine constructor would raise the same error afterwards.
            raise ValueError(_PROCESS_NEEDS_CATALOG)
        plan = ShardPlanner(shard_count, by=by).plan(database)
        logger.info(
            "building in-memory sharded engine for %s (%d shards)",
            database.name,
            len(plan.specs),
        )
        converter = SelectivityConverter(
            matrix, database, effective_database_size=database.total_symbols
        )
        shards = [
            OasisEngine(
                GeneralizedSuffixTree.build(sub_database),
                matrix,
                gap_model,
                converter=converter,
                kernel=kernel,
            )
            for sub_database in plan.sub_databases(database)
        ]
        return cls(
            shards,
            database,
            matrix,
            gap_model,
            converter=converter,
            workers=workers,
            backend=backend,
        )

    @classmethod
    def build_on_disk(
        cls,
        database: SequenceDatabase,
        directory: PathLike,
        matrix: SubstitutionMatrix,
        gap_model: GapModel = FixedGapModel(-1),
        shard_count: int = 2,
        by: str = "residues",
        block_size: int = BLOCK_SIZE_DEFAULT,
        workers: Optional[int] = None,
        build_backend: Union[str, BackendSpec, ExecutionBackend, None] = None,
        **open_kwargs,
    ) -> "ShardedEngine":
        """Build a persistent sharded index directory and open it.

        ``build_backend`` fans the per-shard construction out (each shard
        image is independent); ``backend`` in ``open_kwargs`` selects the
        scatter strategy of the returned engine.
        """
        ShardedIndexBuilder(
            matrix,
            gap_model,
            shard_count=shard_count,
            by=by,
            block_size=block_size,
            backend=build_backend,
        ).build(database, directory)
        return cls.open(
            directory,
            database=database,
            matrix=matrix,
            gap_model=gap_model,
            workers=workers,
            **open_kwargs,
        )

    @classmethod
    def open(
        cls,
        directory: PathLike,
        database: Optional[SequenceDatabase] = None,
        matrix: Optional[SubstitutionMatrix] = None,
        gap_model: Optional[GapModel] = None,
        buffer_pool_bytes: int = DEFAULT_BUFFER_POOL_BYTES,
        simulated_miss_latency: float = 0.0,
        sleep_on_miss: bool = False,
        workers: Optional[int] = None,
        backend: Union[str, BackendSpec, ExecutionBackend, None] = None,
        kernel=None,
    ) -> "ShardedEngine":
        """Open a persistent sharded index from its catalog.

        The catalog makes the directory self-contained: when ``matrix`` /
        ``gap_model`` / ``database`` are omitted they are restored from the
        recorded configuration and the bundled FASTA.  When they *are* given
        they must match what the index was built with --
        :class:`~repro.sharding.catalog.CatalogMismatchError` otherwise.

        ``buffer_pool_bytes`` is the total budget, divided across the shard
        buffer pools proportionally to each shard's catalog-recorded residue
        count (a shard's index size and page working set both scale with its
        residues, so an even split starves big shards while small ones idle),
        with a floor of one frame (``block_size`` bytes) per shard so no pool
        ever rounds down to zero frames.
        """
        from repro.scoring.data import load_matrix
        from repro.sequences.fasta import read_fasta

        directory = str(directory)
        catalog = ShardCatalog.load(directory)
        logger.info(
            "opening sharded index at %s (%d shards, pool budget %d bytes)",
            directory,
            len(catalog.shards),
            buffer_pool_bytes,
        )

        if matrix is None:
            matrix = load_matrix(catalog.matrix_name)
        if gap_model is None:
            gap_model = FixedGapModel(catalog.gap_penalty)
        catalog.check_fingerprint(
            config_fingerprint(matrix.name, gap_model.per_symbol, catalog.block_size)
        )

        if database is None:
            database_path = catalog.database_path(directory)
            database = read_fasta(database_path, name=catalog.database_name)
        catalog.check_database(database)

        if _backend_kind(backend) == "processes" and not os.path.exists(
            catalog.database_path(directory)
        ):
            # Fail at open, not on every query: worker processes restore the
            # sequences from the bundled FASTA, which an index built with
            # write_database=False does not carry.
            raise ValueError(
                "a process scatter backend needs a self-contained index "
                "directory, but this one has no bundled database.fasta "
                "(built with write_database=False) for the worker processes "
                "to load -- rebuild with the FASTA included or open with an "
                "in-process backend (serial / threads:N)"
            )

        converter = SelectivityConverter(
            matrix, database, effective_database_size=database.total_symbols
        )
        shard_budgets = shard_pool_budgets(
            buffer_pool_bytes,
            [entry.residues for entry in catalog.shards],
            catalog.block_size,
        )
        shards: List[OasisEngine] = []
        try:
            for entry, shard_budget in zip(catalog.shards, shard_budgets):
                sub_database = slice_shard(
                    database,
                    ShardSpec(
                        index=entry.index,
                        start_sequence=entry.start_sequence,
                        stop_sequence=entry.stop_sequence,
                        residues=entry.residues,
                    ),
                )
                cursor = DiskSuffixTree(
                    catalog.shard_image_path(directory, entry),
                    sub_database,
                    buffer_pool_bytes=shard_budget,
                    simulated_miss_latency=simulated_miss_latency,
                    sleep_on_miss=sleep_on_miss,
                )
                shards.append(
                    OasisEngine(
                        cursor, matrix, gap_model, converter=converter, kernel=kernel
                    )
                )
            engine = cls(
                shards,
                database,
                matrix,
                gap_model,
                converter=converter,
                catalog=catalog,
                directory=directory,
                workers=workers,
                backend=backend,
                shard_buffer_bytes=shard_budgets,
                simulated_miss_latency=simulated_miss_latency,
                sleep_on_miss=sleep_on_miss,
            )
        except Exception:
            for shard in shards:
                shard.cursor.close()  # type: ignore[attr-defined]
            raise
        return engine

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def database(self) -> SequenceDatabase:
        """The full (global) database the shards jointly index."""
        return self._database

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def sequence_offset(self, shard: int) -> int:
        """Global index of the shard's first sequence (for hit remapping)."""
        return self._offsets[shard]

    def min_score_for(self, query: str, evalue: float) -> int:
        """Equation 3 against the *global* database size."""
        return self.converter.min_score_for_evalue(evalue, len(query))

    # ------------------------------------------------------------------ #
    # Searching
    # ------------------------------------------------------------------ #
    def execute(
        self,
        query: str,
        min_score: Optional[int] = None,
        evalue: Optional[float] = None,
        max_results: Optional[int] = None,
        compute_alignments: bool = False,
        time_budget: Optional[float] = None,
        cancel_event: Optional[threading.Event] = None,
        tracer=None,
    ) -> ShardedQueryExecution:
        """Create one (unstarted) per-shard execution per shard.

        Every shard resolves the same selectivity: they share the global
        converter, so an ``evalue`` maps to one global ``min_score`` and each
        shard prunes against the global threshold, not its own size.
        """
        if self._closed:
            raise RuntimeError("ShardedEngine is closed")
        executions = [
            shard.execute(
                query,
                min_score=min_score,
                evalue=evalue,
                # Each shard keeps at most the global top-k: a hit outside a
                # shard's own top-k can never be in the merged top-k.
                max_results=max_results,
                compute_alignments=compute_alignments,
                time_budget=time_budget,
                cancel_event=cancel_event,
                tracer=tracer,
            )
            for shard in self.shards
        ]
        return ShardedQueryExecution(
            self, executions, query, max_results, time_budget=time_budget, tracer=tracer
        )

    def search(
        self,
        query: str,
        min_score: Optional[int] = None,
        evalue: Optional[float] = None,
        max_results: Optional[int] = None,
        compute_alignments: bool = False,
        tracer=None,
    ) -> SearchResult:
        """Scatter the query across all shards, gather one merged result."""
        return self.execute(
            query,
            min_score=min_score,
            evalue=evalue,
            max_results=max_results,
            compute_alignments=compute_alignments,
            tracer=tracer,
        ).result()

    def search_online(
        self,
        query: str,
        min_score: Optional[int] = None,
        evalue: Optional[float] = None,
        max_results: Optional[int] = None,
        compute_alignments: bool = False,
        tracer=None,
        sample_interval: Optional[float] = None,
    ) -> Iterator[SearchHit]:
        """Stream merged hits in globally decreasing canonical order.

        With a ``tracer`` and a ``sample_interval``, a background
        :class:`~repro.obs.sampler.ResourceSampler` records RSS / pool /
        queue-depth gauges for exactly the life of the stream -- started
        when iteration starts, stopped when the stream is exhausted *or*
        abandoned (``close()``/GC raises ``GeneratorExit`` into the
        wrapper), so an early-terminated online search never leaks a
        sampling thread.  The gauges ride the tracer's ordinary metrics
        registry, mergeable like every other instrument.
        """
        execution = self.execute(
            query,
            min_score=min_score,
            evalue=evalue,
            max_results=max_results,
            compute_alignments=compute_alignments,
            tracer=tracer,
        )
        if tracer is None or sample_interval is None:
            return iter(execution)
        return self._stream_sampled(execution, tracer, sample_interval)

    def _stream_sampled(
        self, execution: "ShardedQueryExecution", tracer, sample_interval: float
    ) -> Iterator[SearchHit]:
        from repro.obs.sampler import ResourceSampler

        sampler = ResourceSampler.for_engine(tracer, self, interval=sample_interval)
        with sampler:
            for hit in execution:
                yield hit

    def instrument(self, tracer) -> None:
        """Attach a tracer to every shard's buffer pool (``None`` detaches).

        Only this engine's own cursors are instrumented; process-backend
        workers hold their own cursors and instrument them per task from the
        :class:`~repro.obs.TraceContext` shipped inside it.
        """
        for shard in self.shards:
            shard.instrument(tracer)

    def search_many(
        self,
        queries: Iterable[str],
        workers: int = 4,
        min_score: Optional[int] = None,
        evalue: Optional[float] = None,
        max_results: Optional[int] = None,
        compute_alignments: bool = False,
        timeout: Optional[float] = None,
        backend: Union[str, BackendSpec, ExecutionBackend, None] = None,
        tracer=None,
    ) -> "BatchSearchReport":
        """Concurrent batch search: queries fan out over the batch backend
        (``backend`` spec, or ``workers`` threads by default) and each query
        in turn scatters across the shards on the engine's own scatter
        backend.  The report carries per-shard aggregates
        (``report.statistics.shards``)."""
        from repro.parallel.executor import BatchSearchExecutor

        executor = BatchSearchExecutor.for_engine(
            self,
            workers=workers,
            timeout=timeout,
            backend=backend,
            min_score=min_score,
            evalue=evalue,
            max_results=max_results,
            compute_alignments=compute_alignments,
            tracer=tracer,
        )
        return executor.run(queries)

    # ------------------------------------------------------------------ #
    # Scatter backend
    # ------------------------------------------------------------------ #
    @property
    def backend_spec(self) -> str:
        """Declarative spec of the scatter backend (``"threads:4"`` etc.)."""
        return self._backend.spec

    def _scatter(self, executions: List[QueryExecution]) -> List[SearchResult]:
        """Run per-shard executions concurrently on the scatter backend."""
        if self._closed:
            # A closed engine must not run searches over closed shard
            # cursors (or silently resurrect a backend it already shut).
            raise RuntimeError("ShardedEngine is closed")
        tracer = executions[0].tracer if executions else None
        if tracer is not None and tracer.flight is not None:
            flight = tracer.flight
            for shard_index, execution in enumerate(executions):
                flight.event(
                    "shard_dispatched",
                    shard=shard_index,
                    query=execution.query[:32],
                    backend=self.backend_spec,
                )
        if self._backend.kind == "processes":
            # Always take the remote path, even for one shard, so a process
            # engine exercises exactly one code path (and its parity is
            # testable at every shard count).
            return self._scatter_processes(executions)
        if len(executions) == 1:
            return [executions[0].result()]
        futures = [
            self._backend.submit(execution.result) for execution in executions
        ]
        return [future.result() for future in futures]

    def _scatter_processes(self, executions: List[QueryExecution]) -> List[SearchResult]:
        """Ship each shard's share of the query to a worker process.

        Workers receive only ``(catalog directory, shard id, query,
        parameters)`` and return plain hit tuples; the parent adopts each
        payload into the local :class:`QueryExecution` it already created
        (statistics, flags) and rebuilds hits with global E-values, so the
        merge in :meth:`ShardedQueryExecution.result` is oblivious to how
        the shard results were produced.

        The query's pinned monotonic deadline is translated into one
        absolute wall-clock (``time.time()``) deadline shared by every
        shard task: the wall clock crosses process boundaries, so a task
        that queued behind others sees only the time actually left -- the
        budget stays a true per-query wall clock, exactly as on the
        in-process paths.  Cancellation (batch abort, abandoned stream) is
        honoured for shard tasks that have not started; an in-flight remote
        search cannot be interrupted cooperatively and runs to completion
        (bound it with a time budget).
        """
        first = executions[0]
        deadline_epoch: Optional[float] = None
        if first._deadline is not None:
            # Epoch translation for cross-process deadlines, not a duration.
            deadline_epoch = time.time() + (  # repro: allow[monotonic-time]
                first._deadline - time.perf_counter()
            )
        trace_context = None
        if first.tracer is not None:
            # Workers continue the parent's trace: same trace_id, shard spans
            # parented under the parent's query span.
            trace_context = first.tracer.context(parent_id=first.trace_parent)
        logger.debug(
            "scattering query %r across %d shards via %s",
            first.query,
            len(executions),
            self.backend_spec,
        )
        tasks = [
            ShardSearchTask(
                directory=str(self.directory),
                shard_index=shard_index,
                query=first.query,
                min_score=first.min_score,
                max_results=first.max_results,
                compute_alignments=first.compute_alignments,
                deadline_epoch=deadline_epoch,
                buffer_pool_bytes=(
                    self.shard_buffer_bytes[shard_index]
                    if self.shard_buffer_bytes is not None
                    else DEFAULT_BUFFER_POOL_BYTES
                ),
                simulated_miss_latency=self.simulated_miss_latency,
                sleep_on_miss=self.sleep_on_miss,
                fingerprint=(
                    self.catalog.fingerprint if self.catalog is not None else None
                ),
                database_digest=(
                    self.catalog.database_digest if self.catalog is not None else ""
                ),
                trace=trace_context,
                kernel=self.shards[shard_index].kernel,
            )
            for shard_index in range(len(executions))
        ]
        futures = [self._backend.submit(run_shard_search, task) for task in tasks]
        cancel = first._cancel_event
        if cancel is not None:
            # Poll instead of blocking outright, so a batch abort can still
            # cancel the shard tasks the pool has not started yet.
            pending = set(futures)
            while pending:
                done, pending = futures_wait(pending, timeout=0.05)
                if pending and cancel.is_set():
                    for future in pending:
                        future.cancel()
                    break
        results = []
        try:
            for execution, future in zip(executions, futures):
                if future.cancelled():
                    execution.aborted = True
                    results.append(
                        SearchResult(
                            query=execution.query.upper(),
                            engine="oasis",
                            hits=[],
                            statistics=execution.statistics,
                        )
                    )
                else:
                    results.append(
                        self._adopt_remote_payload(execution, future.result())
                    )
        except BrokenExecutor:
            # A dead worker breaks the whole pool: replace it before
            # propagating, so one crash fails one query (a per-query error
            # in a batch report), not every query for the engine's life.
            reset = getattr(self._backend, "reset", None)
            if reset is not None:
                reset()
            raise
        return results

    def _adopt_remote_payload(
        self, execution: QueryExecution, payload: dict
    ) -> SearchResult:
        """Fold a worker's plain-data payload into the local execution.

        The worker searched with a bare threshold and no converter; the
        parent owns the global E-value model, so every raw score is
        annotated here exactly as the in-process path would have
        (same statistics model, same query length, same global database
        size -- bit-identical floats on the same machine).
        """
        statistics = execution.statistics
        for field, value in payload["statistics"].items():
            setattr(statistics, field, value)
        execution.timed_out = bool(payload["timed_out"])
        execution.aborted = bool(payload["aborted"])
        if execution.tracer is not None:
            # Stitch the worker's spans into the parent's trace and fold its
            # metric counters (search.*, pool.*) into the parent's registry.
            spans = payload.get("spans")
            if spans:
                execution.tracer.adopt(spans)
            metrics_snapshot = payload.get("metrics")
            if metrics_snapshot:
                execution.tracer.metrics.merge_snapshot(metrics_snapshot)
        query_length = len(execution.query_sequence.codes)
        hits = []
        for local_index, identifier, score, packed_alignment in payload["hits"]:
            evalue = None
            if execution.statistics_model is not None:
                evalue = execution.statistics_model.evalue(
                    score, query_length, execution.database_size
                )
            hits.append(
                SearchHit(
                    sequence_index=local_index,
                    sequence_identifier=identifier,
                    score=score,
                    evalue=evalue,
                    alignment=unpack_alignment(packed_alignment),
                )
            )
        return SearchResult(
            query=execution.query.upper(),
            engine="oasis",
            hits=hits,
            elapsed_seconds=statistics.elapsed_seconds,
            columns_expanded=statistics.columns_expanded,
            statistics=statistics,
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut the scatter backend down and close disk-resident cursors.

        Backends the engine created from a spec are closed here; a live
        backend passed in by the caller is left running (they own it).
        """
        if self._closed:
            return
        self._closed = True
        if self._backend_owned:
            self._backend.close()
        for shard in self.shards:
            close = getattr(shard.cursor, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        source = f", directory={self.directory!r}" if self.directory else ""
        return (
            f"ShardedEngine(database={self._database.name!r}, "
            f"shards={self.shard_count}, backend={self.backend_spec!r}{source})"
        )
