"""Sharded index subsystem: persistent multi-shard disk indexes.

The pieces, bottom-up:

* :class:`ShardPlanner` splits one :class:`~repro.sequences.SequenceDatabase`
  into N contiguous, balanced sub-databases (by residues or sequence count);
* :class:`ShardedIndexBuilder` builds one Section-3.4 disk image per shard
  (memory-bounded partitioned construction) and writes a self-describing
  ``catalog.json`` manifest next to them;
* :class:`ShardCatalog` is that manifest: shard paths, sequence-id ranges,
  residue counts and the scoring-configuration fingerprint, with loud
  :class:`CatalogMismatchError` failures instead of silently wrong results;
* :class:`ShardedEngine` opens a catalog (or builds in-memory shards) and
  answers ``search`` / ``search_online`` / ``search_many`` by scatter-gather
  over the shards, producing results hit-for-hit identical to a monolithic
  :class:`~repro.core.engine.OasisEngine` over the same database.
"""

from repro.sharding.builder import ShardedIndexBuilder, build_sharded_index
from repro.sharding.catalog import (
    CATALOG_FILENAME,
    CatalogError,
    CatalogMismatchError,
    ShardCatalog,
    ShardEntry,
    config_fingerprint,
    database_digest,
)
from repro.sharding.engine import (
    ShardedEngine,
    ShardedQueryExecution,
    shard_pool_budgets,
)
from repro.sharding.planner import ShardPlan, ShardPlanner, ShardSpec
from repro.sharding.remote import ShardBuildTask, ShardSearchTask

__all__ = [
    "CATALOG_FILENAME",
    "CatalogError",
    "CatalogMismatchError",
    "ShardBuildTask",
    "ShardCatalog",
    "ShardEntry",
    "ShardPlan",
    "ShardPlanner",
    "ShardSearchTask",
    "ShardSpec",
    "ShardedEngine",
    "ShardedIndexBuilder",
    "ShardedQueryExecution",
    "build_sharded_index",
    "config_fingerprint",
    "database_digest",
    "shard_pool_budgets",
]
