"""The on-disk catalog (manifest) describing a sharded index directory.

A sharded index lives in one directory::

    index-dir/
        catalog.json        <- this manifest
        database.fasta      <- the indexed sequences (the images only store
                               structure; sequence text travels with them)
        shard-0000.oasis    <- Section-3.4 disk image of shard 0
        shard-0001.oasis
        ...

``catalog.json`` is what makes the directory self-describing: it records the
shard layout (sequence-id ranges, residue counts), the block size and the
scoring configuration the images were built with, so that a later process can
reopen the index without rebuilding anything -- and refuses, loudly, to serve
it with a different configuration (a search pruned with the wrong matrix or
gap penalty would be silently wrong).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Dict, List, Union

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.sequences.database import SequenceDatabase

PathLike = Union[str, os.PathLike]

#: Bumped whenever the catalog schema or the image layout changes shape.
CATALOG_FORMAT_VERSION = 1

#: File names inside a sharded index directory.
CATALOG_FILENAME = "catalog.json"
DATABASE_FILENAME = "database.fasta"


class CatalogError(ValueError):
    """Raised when a catalog is missing, unreadable or malformed."""


class CatalogMismatchError(CatalogError):
    """Raised when a catalog's configuration does not match the caller's."""


def database_digest(database: "SequenceDatabase") -> str:
    """Order-sensitive content digest of a database (identifiers + residues).

    The shard images encode sequence *content and order*; counts alone cannot
    tell two same-size databases apart, and serving an index against the
    wrong (or reordered) FASTA silently mislabels every hit.  The digest is
    recorded at build time and re-checked on open.
    """
    digest = hashlib.sha256()
    for record in database:
        digest.update(record.identifier.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(record.text.encode("utf-8"))
        digest.update(b"\x01")
    return digest.hexdigest()


def config_fingerprint(matrix_name: str, gap_penalty: int, block_size: int) -> Dict[str, object]:
    """The scoring/layout configuration a set of shard images was built with.

    Everything that changes either the bytes of the images or the meaning of
    a score threshold belongs here; opening a catalog with a different
    fingerprint raises :class:`CatalogMismatchError`.
    """
    return {
        "format_version": CATALOG_FORMAT_VERSION,
        "matrix": matrix_name,
        "gap_penalty": int(gap_penalty),
        "block_size": int(block_size),
    }


@dataclass(frozen=True)
class ShardEntry:
    """Catalog row for one shard."""

    index: int
    #: Image file name, relative to the catalog's directory.
    path: str
    #: Global index of the shard's first sequence.
    start_sequence: int
    #: Number of sequences in the shard.
    sequence_count: int
    #: Total residues (no terminals) in the shard.
    residues: int

    @property
    def stop_sequence(self) -> int:
        return self.start_sequence + self.sequence_count


@dataclass
class ShardCatalog:
    """The parsed ``catalog.json`` of one sharded index directory."""

    database_name: str
    sequence_count: int
    total_residues: int
    balanced_by: str
    fingerprint: Dict[str, object]
    #: :func:`database_digest` of the indexed database at build time.
    database_digest: str = ""
    shards: List[ShardEntry] = field(default_factory=list)

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    @property
    def block_size(self) -> int:
        return int(self.fingerprint["block_size"])

    @property
    def matrix_name(self) -> str:
        return str(self.fingerprint["matrix"])

    @property
    def gap_penalty(self) -> int:
        return int(self.fingerprint["gap_penalty"])

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check internal consistency (shard ranges tile the database)."""
        if not self.shards:
            raise CatalogError("catalog lists no shards")
        expected_start = 0
        for entry in sorted(self.shards, key=lambda e: e.index):
            if entry.start_sequence != expected_start:
                raise CatalogError(
                    f"shard {entry.index} starts at sequence {entry.start_sequence}, "
                    f"expected {expected_start}: shard ranges must tile the database"
                )
            if entry.sequence_count < 1:
                raise CatalogError(f"shard {entry.index} is empty")
            expected_start = entry.stop_sequence
        if expected_start != self.sequence_count:
            raise CatalogError(
                f"shard ranges cover {expected_start} sequences, "
                f"catalog declares {self.sequence_count}"
            )

    def check_fingerprint(self, expected: Dict[str, object]) -> None:
        """Raise :class:`CatalogMismatchError` unless configurations agree."""
        if self.fingerprint != expected:
            differences = sorted(
                key
                for key in set(self.fingerprint) | set(expected)
                if self.fingerprint.get(key) != expected.get(key)
            )
            detail = ", ".join(
                f"{key}: catalog={self.fingerprint.get(key)!r} vs "
                f"requested={expected.get(key)!r}"
                for key in differences
            )
            raise CatalogMismatchError(
                "sharded index was built with a different configuration "
                f"({detail}); rebuild the index or open it with the "
                "configuration recorded in its catalog"
            )

    def check_database(self, database: "SequenceDatabase") -> None:
        """Raise unless the supplied database matches the indexed one.

        Counts give a readable error for gross mismatches; the content digest
        catches same-size substitutions and reorderings, either of which
        would silently mislabel every hit.
        """
        if (
            len(database) != self.sequence_count
            or database.total_symbols != self.total_residues
        ):
            raise CatalogMismatchError(
                "database does not match the sharded index: catalog records "
                f"{self.sequence_count} sequences / {self.total_residues} residues, "
                f"got {len(database)} sequences / {database.total_symbols} residues"
            )
        if self.database_digest and database_digest(database) != self.database_digest:
            raise CatalogMismatchError(
                "database content does not match the sharded index: the "
                "sequences (or their order) differ from what was indexed -- "
                "rebuild the index or supply the original FASTA"
            )

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_json(self) -> str:
        payload = {
            "database_name": self.database_name,
            "sequence_count": self.sequence_count,
            "total_residues": self.total_residues,
            "balanced_by": self.balanced_by,
            "fingerprint": self.fingerprint,
            "database_digest": self.database_digest,
            "shards": [asdict(entry) for entry in self.shards],
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ShardCatalog":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise CatalogError(f"catalog is not valid JSON: {error}") from error
        try:
            catalog = cls(
                database_name=payload["database_name"],
                sequence_count=int(payload["sequence_count"]),
                total_residues=int(payload["total_residues"]),
                balanced_by=payload.get("balanced_by", "residues"),
                fingerprint=dict(payload["fingerprint"]),
                database_digest=str(payload.get("database_digest", "")),
                shards=[ShardEntry(**entry) for entry in payload["shards"]],
            )
        except (KeyError, TypeError) as error:
            raise CatalogError(f"catalog is missing required fields: {error}") from error
        catalog.validate()
        return catalog

    def save(self, directory: PathLike) -> str:
        """Write ``catalog.json`` into ``directory``; returns the path."""
        path = os.path.join(str(directory), CATALOG_FILENAME)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
        return path

    @classmethod
    def load(cls, directory: PathLike) -> "ShardCatalog":
        """Read and validate the catalog of a sharded index directory."""
        path = os.path.join(str(directory), CATALOG_FILENAME)
        if not os.path.exists(path):
            raise CatalogError(
                f"no {CATALOG_FILENAME} in {directory!s}: not a sharded index "
                "directory (build one with ShardedIndexBuilder or "
                "`repro-oasis index build`)"
            )
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def shard_image_path(self, directory: PathLike, entry: ShardEntry) -> str:
        return os.path.join(str(directory), entry.path)

    def database_path(self, directory: PathLike) -> str:
        return os.path.join(str(directory), DATABASE_FILENAME)
