"""ShardPlanner: splitting one SequenceDatabase into balanced sub-databases.

The paper's partitioned construction (Section 3.4.1) bounds the *build*
memory but still yields one monolithic disk image.  A sharded deployment goes
one step further and splits the database itself into N contiguous slices,
each indexed independently, so that shards can be built, cached and searched
in parallel and the database size is no longer capped by what one image can
hold.

Shards are *contiguous* runs of the global sequence order.  Contiguity keeps
the catalog tiny (two integers per shard instead of an id list) and makes the
shard-local to global sequence-index mapping a single addition, which is what
lets merged shard results carry correct global indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.sequences.database import SequenceDatabase

#: The two supported balancing criteria.
BALANCE_BY = ("residues", "sequences")


@dataclass(frozen=True)
class ShardSpec:
    """One shard: a contiguous slice ``[start_sequence, stop_sequence)``."""

    index: int
    start_sequence: int
    stop_sequence: int
    residues: int

    @property
    def sequence_count(self) -> int:
        return self.stop_sequence - self.start_sequence

    def identifier(self) -> str:
        """Stable shard name used for file naming (``shard-0003``)."""
        return f"shard-{self.index:04d}"


@dataclass
class ShardPlan:
    """The full partition of one database into shards."""

    database_name: str
    sequence_count: int
    total_residues: int
    by: str
    specs: List[ShardSpec] = field(default_factory=list)

    @property
    def shard_count(self) -> int:
        return len(self.specs)

    def slice_database(self, database: SequenceDatabase, spec: ShardSpec) -> SequenceDatabase:
        """Materialise one shard's sub-database (records are shared, not copied)."""
        return slice_shard(database, spec)

    def sub_databases(self, database: SequenceDatabase) -> List[SequenceDatabase]:
        return [self.slice_database(database, spec) for spec in self.specs]


def slice_shard(database: SequenceDatabase, spec: ShardSpec) -> SequenceDatabase:
    """One shard's sub-database: the single place that owns the slice + name
    convention, shared by the builder (fresh plans) and by
    :meth:`~repro.sharding.ShardedEngine.open` (specs rebuilt from a catalog)."""
    return SequenceDatabase(
        records=database.records[spec.start_sequence : spec.stop_sequence],
        alphabet=database.alphabet,
        name=f"{database.name}/{spec.identifier()}",
    )


class ShardPlanner:
    """Split a database into ``shard_count`` contiguous, balanced shards.

    Parameters
    ----------
    shard_count:
        Number of shards; must be between 1 and the number of sequences.
    by:
        Balancing criterion: ``"residues"`` (default; equalises total symbols
        per shard, the quantity that drives index size and search cost) or
        ``"sequences"`` (equalises sequence counts).
    """

    def __init__(self, shard_count: int, by: str = "residues"):
        if shard_count < 1:
            raise ValueError("shard_count must be at least 1")
        if by not in BALANCE_BY:
            raise ValueError(f"by must be one of {BALANCE_BY}, got {by!r}")
        self.shard_count = int(shard_count)
        self.by = by

    def plan(self, database: SequenceDatabase) -> ShardPlan:
        """Compute the shard boundaries for one database."""
        if len(database) == 0:
            raise ValueError("cannot shard an empty SequenceDatabase")
        if self.shard_count > len(database):
            raise ValueError(
                f"cannot split {len(database)} sequences into "
                f"{self.shard_count} non-empty shards"
            )
        weights = [
            len(record) if self.by == "residues" else 1 for record in database
        ]
        boundaries = _balanced_boundaries(weights, self.shard_count)
        specs = [
            ShardSpec(
                index=i,
                start_sequence=start,
                stop_sequence=stop,
                residues=sum(len(database[j]) for j in range(start, stop)),
            )
            for i, (start, stop) in enumerate(boundaries)
        ]
        return ShardPlan(
            database_name=database.name,
            sequence_count=len(database),
            total_residues=database.total_symbols,
            by=self.by,
            specs=specs,
        )


def _balanced_boundaries(weights: List[int], parts: int) -> List[Tuple[int, int]]:
    """Contiguous split of ``weights`` into ``parts`` non-empty slices.

    Greedy with a look-ahead on the remainder: a slice closes once taking the
    next item would overshoot its fair share of what is still unassigned,
    while always leaving at least one item per remaining slice.  Deterministic
    and O(n).
    """
    boundaries: List[Tuple[int, int]] = []
    start = 0
    remaining_weight = sum(weights)
    for part in range(parts):
        slices_left = parts - part
        if slices_left == 1:
            boundaries.append((start, len(weights)))
            break
        target = remaining_weight / slices_left
        stop = start + 1  # every slice takes at least one item
        accumulated = weights[start]
        # The slice may grow while it stays under target, but must leave one
        # item for each of the remaining slices.
        while (
            stop < len(weights) - (slices_left - 1)
            and accumulated + weights[stop] / 2 < target
        ):
            accumulated += weights[stop]
            stop += 1
        boundaries.append((start, stop))
        remaining_weight -= accumulated
        start = stop
    return boundaries
