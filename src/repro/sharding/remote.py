"""Process-pool worker side of the sharded engine and builder.

Everything in this module runs (also) inside ``ProcessBackend`` worker
processes, so the ground rules are strict:

* tasks are plain picklable descriptions -- ``(catalog directory, shard id,
  query, parameters)`` -- never live engine objects;
* each worker process opens its shard image lazily, read-only, from the
  catalog, and caches the open engine for the life of the process (the
  expensive part -- catalog + FASTA parse + cursor open -- is paid once per
  (worker, shard), not once per query);
* results travel back as plain tuples of primitives.  Workers do **not**
  compute E-values: a shard knows only its slice of the database, and the
  parent holds the global :class:`~repro.core.evalue.SelectivityConverter`,
  so the parent remaps raw scores to global E-values and shard-local
  sequence indices to global ones.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.results import Alignment
from repro.obs.trace import TraceContext

#: Serialized hit: (shard-local sequence index, identifier, score, alignment).
HitTuple = Tuple[int, str, int, Optional[tuple]]


@dataclass(frozen=True)
class ShardSearchTask:
    """One shard's share of one query, shipped to a worker process.

    ``min_score`` is the already-resolved *global* threshold (the parent
    converts an E-value cutoff through the global converter; Equation 3
    must see the whole database, which the worker does not).
    ``deadline_epoch`` is the query's absolute deadline as ``time.time()``
    seconds: the wall clock is shared by every process on the machine
    (unlike the monotonic clock, whose origin is undefined across
    processes), so a task that waited in the pool queue sees only the time
    actually remaining instead of restarting a full budget -- the same
    no-over-grant guarantee the in-process path gets from its pinned
    monotonic deadline.

    ``fingerprint`` / ``database_digest`` are the parent's view of the
    catalog.  Workers load the catalog from disk *lazily*, so an index
    rebuilt in place between the parent's open and a worker's first task
    would otherwise be searched silently with mismatched scoring or
    sequences; the worker re-checks both against what it actually loaded
    and fails the query loudly instead.
    """

    directory: str
    shard_index: int
    query: str
    min_score: int
    max_results: Optional[int]
    compute_alignments: bool
    deadline_epoch: Optional[float]
    buffer_pool_bytes: int
    simulated_miss_latency: float
    sleep_on_miss: bool
    fingerprint: Optional[Dict[str, object]] = None
    database_digest: str = ""
    #: Telemetry seed: when set, the worker builds its own tracer continuing
    #: the parent's trace, records its shard span (parented under the
    #: parent's query span) plus buffer-pool metrics, and returns both in the
    #: payload for the parent to adopt/merge -- one coherent span tree per
    #: query regardless of which processes produced its pieces.
    trace: Optional[TraceContext] = None
    #: Expansion-kernel name the parent engine runs under; the worker's
    #: cached :class:`OasisSearch` uses the same one (parity-gated, so this
    #: affects speed and statistics attribution only, never the hits).
    kernel: Optional[str] = None


@dataclass(frozen=True)
class ShardBuildTask:
    """One shard's construction job (used by every backend kind).

    The sub-database is embedded: building happens before any FASTA exists
    on disk, and pickling a database slice is what lets the same task type
    drive serial, thread and process builds alike.
    """

    directory: str
    image_name: str
    sub_database: object  # SequenceDatabase; typed loosely to keep pickling honest
    block_size: int
    max_partition_size: int


# --------------------------------------------------------------------- #
# Per-process caches
# --------------------------------------------------------------------- #
#: directory -> (catalog, database, matrix, gap_model); shared by all shards.
_DIRECTORY_CACHE: Dict[str, tuple] = {}
#: (directory, shard, pool bytes, latency, sleep) -> OasisSearch over the shard.
_SHARD_CACHE: Dict[tuple, object] = {}


def _catalog_mismatch(catalog: "ShardCatalog", task: ShardSearchTask) -> Optional[str]:
    """What (if anything) differs between the task's and the loaded catalog."""
    if task.fingerprint is not None and catalog.fingerprint != task.fingerprint:
        return "configuration fingerprint"
    if task.database_digest and catalog.database_digest != task.database_digest:
        return "database digest"
    return None


def _evict_directory(directory: str) -> None:
    """Drop everything this worker cached for one index directory."""
    _DIRECTORY_CACHE.pop(directory, None)
    for key in [key for key in _SHARD_CACHE if key[0] == directory]:
        search = _SHARD_CACHE.pop(key)
        close = getattr(search.cursor, "close", None)
        if close is not None:
            close()


def _open_directory(directory: str) -> tuple:
    cached = _DIRECTORY_CACHE.get(directory)
    if cached is not None:
        return cached
    from repro.scoring.data import load_matrix
    from repro.scoring.gaps import FixedGapModel
    from repro.sequences.fasta import read_fasta
    from repro.sharding.catalog import ShardCatalog

    catalog = ShardCatalog.load(directory)
    matrix = load_matrix(catalog.matrix_name)
    gap_model = FixedGapModel(catalog.gap_penalty)
    database = read_fasta(catalog.database_path(directory), name=catalog.database_name)
    _DIRECTORY_CACHE[directory] = (catalog, database, matrix, gap_model)
    return _DIRECTORY_CACHE[directory]


def _open_shard_search(task: ShardSearchTask) -> "OasisSearch":
    """The worker's lazily opened, cached search over one shard image."""
    directory = os.path.abspath(task.directory)
    key = (
        directory,
        task.shard_index,
        task.buffer_pool_bytes,
        task.simulated_miss_latency,
        task.sleep_on_miss,
        task.kernel,
    )
    from repro.sharding.catalog import CatalogMismatchError

    # Checked on *every* task, not only on a cache miss: the comparison is a
    # dict/string equality, and it guarantees each answer was produced
    # against the catalog the parent opened.  A mismatch first evicts the
    # worker's caches and reloads once -- a long-lived worker serving a
    # *reopened* engine (shared caller-owned backend) would otherwise be
    # stuck comparing fresh tasks against a stale cached catalog forever.
    # (What none of this can guard is an image file overwritten in place
    # under an engine's open cursors -- that hazard is identical for the
    # in-process paths and for the monolithic engine.)
    catalog, database, matrix, gap_model = _open_directory(directory)
    mismatch = _catalog_mismatch(catalog, task)
    if mismatch is not None:
        _evict_directory(directory)
        catalog, database, matrix, gap_model = _open_directory(directory)
        mismatch = _catalog_mismatch(catalog, task)
        if mismatch is not None:
            raise CatalogMismatchError(
                f"sharded index at {directory} changed on disk: the worker "
                f"loaded a catalog whose {mismatch} differs from the engine "
                "that issued this query -- the index was rebuilt in place "
                "under a live engine; reopen the engine"
            )
    cached = _SHARD_CACHE.get(key)
    if cached is not None:
        return cached
    from repro.core.oasis import OasisSearch
    from repro.sharding.planner import ShardSpec, slice_shard
    from repro.storage.disk_tree import DiskSuffixTree

    entry = catalog.shards[task.shard_index]
    sub_database = slice_shard(
        database,
        ShardSpec(
            index=entry.index,
            start_sequence=entry.start_sequence,
            stop_sequence=entry.stop_sequence,
            residues=entry.residues,
        ),
    )
    cursor = DiskSuffixTree(
        catalog.shard_image_path(directory, entry),
        sub_database,
        buffer_pool_bytes=task.buffer_pool_bytes,
        simulated_miss_latency=task.simulated_miss_latency,
        sleep_on_miss=task.sleep_on_miss,
    )
    # A bare OasisSearch, no SelectivityConverter: the threshold arrives
    # pre-resolved and E-values are the parent's job (they need the global
    # database size).
    search = OasisSearch(cursor, matrix, gap_model, kernel=task.kernel)
    _SHARD_CACHE[key] = search
    return search


def _expired(task: ShardSearchTask) -> bool:
    # Epoch comparison: the deadline was translated to wall clock to cross
    # the process boundary.
    return task.deadline_epoch is not None and task.deadline_epoch <= time.time()  # repro: allow[monotonic-time]


def _timed_out_payload() -> dict:
    """The payload of a shard task whose deadline passed before it searched."""
    return {
        "hits": [],
        "statistics": {},
        "timed_out": True,
        "aborted": False,
        "spans": [],
        "metrics": {},
    }


def _pack_alignment(alignment: Optional[Alignment]) -> Optional[tuple]:
    if alignment is None:
        return None
    return (
        alignment.score,
        alignment.query_start,
        alignment.query_end,
        alignment.target_start,
        alignment.target_end,
        alignment.aligned_query,
        alignment.aligned_target,
    )


def unpack_alignment(packed: Optional[tuple]) -> Optional[Alignment]:
    """Parent-side inverse of the worker's alignment packing."""
    if packed is None:
        return None
    return Alignment(*packed)


def run_shard_search(task: ShardSearchTask) -> dict:
    """Worker entry point: run one query over one shard, return plain data.

    The payload mirrors what the in-process path reads off a finished
    :class:`~repro.core.oasis.QueryExecution`: hit tuples (shard-local
    indices, raw scores), the full statistics counters, and the
    timed-out/aborted flags, so the parent can adopt it into the execution
    object it already created and every downstream consumer (shard stats,
    batch aggregates, merged flags) works unchanged.
    """
    # The deadline is re-derived twice: before the lazy shard open (skip
    # the expensive open when the task already expired in the pool queue)
    # and again after it (a cold worker's catalog/FASTA/cursor open must be
    # charged against the query's budget, not granted on top of it --
    # QueryExecution counts its budget from when the search starts).
    if _expired(task):
        return _timed_out_payload()
    search = _open_shard_search(task)
    time_budget: Optional[float] = None
    if task.deadline_epoch is not None:
        # Back from the epoch deadline to a relative budget (worker side).
        time_budget = task.deadline_epoch - time.time()  # repro: allow[monotonic-time]
        if time_budget <= 0:
            return _timed_out_payload()
    tracer = None
    if task.trace is not None:
        tracer = task.trace.tracer()
        instrument = getattr(search.cursor, "instrument", None)
        if instrument is not None:
            instrument(tracer)
    try:
        execution = search.execute(
            task.query,
            min_score=task.min_score,
            max_results=task.max_results,
            compute_alignments=task.compute_alignments,
            time_budget=time_budget,
            tracer=tracer,
        )
        if tracer is not None:
            # The shard span slots under the parent's query span: the ids it
            # was born with (pid-prefixed) stay valid when the parent adopts.
            execution.trace_name = "shard"
            execution.trace_parent = task.trace.parent_id
            execution.trace_attributes = {"shard": task.shard_index, "phase": "shard"}
        result = execution.result()
    finally:
        if tracer is not None:
            instrument = getattr(search.cursor, "instrument", None)
            if instrument is not None:
                instrument(None)
    hits: List[HitTuple] = [
        (
            hit.sequence_index,
            hit.sequence_identifier,
            hit.score,
            _pack_alignment(hit.alignment),
        )
        for hit in result.hits
    ]
    payload = {
        "hits": hits,
        "statistics": execution.statistics.as_dict(),
        "timed_out": execution.timed_out,
        "aborted": execution.aborted,
    }
    if tracer is not None:
        payload["spans"] = [record.to_dict() for record in tracer.records()]
        payload["metrics"] = tracer.metrics.snapshot()
    return payload


def run_shard_build(task: ShardBuildTask) -> str:
    """Worker entry point: build one shard's disk image; returns its name.

    Also the single implementation used by the serial and thread backends
    (the task is then executed in-process), so every backend builds
    byte-identical images through exactly the same code path.
    """
    from repro.storage.builder import build_disk_image
    from repro.suffixtree.partitioned import PartitionedTreeBuilder

    tree = PartitionedTreeBuilder(
        max_partition_size=task.max_partition_size
    ).build(task.sub_database)
    build_disk_image(
        tree,
        os.path.join(task.directory, task.image_name),
        block_size=task.block_size,
    )
    return task.image_name
