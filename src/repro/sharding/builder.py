"""ShardedIndexBuilder: one persistent disk image per shard, plus a catalog.

Each shard's suffix tree is constructed with the memory-bounded partitioned
builder (Section 3.4.1) and serialised with
:func:`repro.storage.build_disk_image`, so building a sharded index never
needs more memory than one shard's partition budget.  The sequences
themselves are written alongside the images (``database.fasta``): the disk
images store tree structure and symbols only, and an index that has to be
reunited with exactly the right FASTA file by hand is an index waiting to be
corrupted.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.scoring.gaps import FixedGapModel, GapModel
from repro.scoring.matrix import SubstitutionMatrix
from repro.sequences.database import SequenceDatabase
from repro.sequences.fasta import write_fasta
from repro.sharding.catalog import (
    DATABASE_FILENAME,
    ShardCatalog,
    ShardEntry,
    config_fingerprint,
    database_digest,
)
from repro.sharding.planner import ShardPlanner
from repro.storage.blocks import BLOCK_SIZE_DEFAULT
from repro.storage.builder import build_disk_image
from repro.suffixtree.partitioned import PartitionedTreeBuilder

PathLike = Union[str, os.PathLike]


class ShardedIndexBuilder:
    """Build a persistent multi-shard index directory for one database.

    Parameters
    ----------
    matrix / gap_model:
        The scoring configuration the index will be served with; recorded in
        the catalog fingerprint so a mismatched open fails fast.
    shard_count:
        Number of shards to split the database into.
    by:
        Shard balancing criterion (see :class:`~repro.sharding.ShardPlanner`).
    block_size:
        Disk-image block size (every shard uses the same one).
    max_partition_size:
        Partition budget of the Hunt-et-al. construction used per shard.
    """

    def __init__(
        self,
        matrix: SubstitutionMatrix,
        gap_model: GapModel = FixedGapModel(-1),
        shard_count: int = 1,
        by: str = "residues",
        block_size: int = BLOCK_SIZE_DEFAULT,
        max_partition_size: int = 50_000,
    ):
        self.matrix = matrix
        self.gap_model = gap_model
        self.planner = ShardPlanner(shard_count, by=by)
        self.block_size = int(block_size)
        self.max_partition_size = int(max_partition_size)

    def build(
        self,
        database: SequenceDatabase,
        directory: PathLike,
        write_database: bool = True,
    ) -> ShardCatalog:
        """Build every shard image under ``directory`` and write the catalog.

        The directory is created if needed.  Returns the written catalog.
        Set ``write_database=False`` to skip the FASTA copy (the caller then
        has to supply the identical database when reopening).
        """
        directory = str(directory)
        os.makedirs(directory, exist_ok=True)
        plan = self.planner.plan(database)

        entries = []
        for spec in plan.specs:
            sub_database = plan.slice_database(database, spec)
            tree = PartitionedTreeBuilder(
                max_partition_size=self.max_partition_size
            ).build(sub_database)
            image_name = f"{spec.identifier()}.oasis"
            build_disk_image(
                tree,
                os.path.join(directory, image_name),
                block_size=self.block_size,
            )
            entries.append(
                ShardEntry(
                    index=spec.index,
                    path=image_name,
                    start_sequence=spec.start_sequence,
                    sequence_count=spec.sequence_count,
                    residues=spec.residues,
                )
            )

        catalog = ShardCatalog(
            database_name=database.name,
            sequence_count=len(database),
            total_residues=database.total_symbols,
            balanced_by=plan.by,
            fingerprint=config_fingerprint(
                self.matrix.name, self.gap_model.per_symbol, self.block_size
            ),
            database_digest=database_digest(database),
            shards=entries,
        )
        if write_database:
            write_fasta(database, os.path.join(directory, DATABASE_FILENAME))
        catalog.save(directory)
        return catalog


def build_sharded_index(
    database: SequenceDatabase,
    directory: PathLike,
    matrix: SubstitutionMatrix,
    gap_model: GapModel = FixedGapModel(-1),
    shard_count: int = 1,
    by: str = "residues",
    block_size: int = BLOCK_SIZE_DEFAULT,
    max_partition_size: Optional[int] = None,
) -> ShardCatalog:
    """Functional one-shot wrapper around :class:`ShardedIndexBuilder`."""
    builder = ShardedIndexBuilder(
        matrix,
        gap_model,
        shard_count=shard_count,
        by=by,
        block_size=block_size,
        **({"max_partition_size": max_partition_size} if max_partition_size else {}),
    )
    return builder.build(database, directory)
