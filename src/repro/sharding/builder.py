"""ShardedIndexBuilder: one persistent disk image per shard, plus a catalog.

Each shard's suffix tree is constructed with the memory-bounded partitioned
builder (Section 3.4.1) and serialised with
:func:`repro.storage.build_disk_image`, so building a sharded index never
needs more memory than one shard's partition budget.  The sequences
themselves are written alongside the images (``database.fasta``): the disk
images store tree structure and symbols only, and an index that has to be
reunited with exactly the right FASTA file by hand is an index waiting to be
corrupted.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.exec import BackendSpec, ExecutionBackend, resolve_backend
from repro.obs.logsetup import get_logger
from repro.scoring.gaps import FixedGapModel, GapModel
from repro.scoring.matrix import SubstitutionMatrix
from repro.sequences.database import SequenceDatabase
from repro.sequences.fasta import write_fasta
from repro.sharding.catalog import (
    DATABASE_FILENAME,
    ShardCatalog,
    ShardEntry,
    config_fingerprint,
    database_digest,
)
from repro.sharding.planner import ShardPlanner
from repro.sharding.remote import ShardBuildTask, run_shard_build
from repro.storage.blocks import BLOCK_SIZE_DEFAULT

PathLike = Union[str, os.PathLike]

logger = get_logger(__name__)


class ShardedIndexBuilder:
    """Build a persistent multi-shard index directory for one database.

    Parameters
    ----------
    matrix / gap_model:
        The scoring configuration the index will be served with; recorded in
        the catalog fingerprint so a mismatched open fails fast.
    shard_count:
        Number of shards to split the database into.
    by:
        Shard balancing criterion (see :class:`~repro.sharding.ShardPlanner`).
    block_size:
        Disk-image block size (every shard uses the same one).
    max_partition_size:
        Partition budget of the Hunt-et-al. construction used per shard.
    backend:
        Execution backend for the per-shard builds -- a spec string
        (``"serial"``, ``"threads:N"``, ``"processes:N"``), a
        :class:`~repro.exec.BackendSpec`, or a live
        :class:`~repro.exec.ExecutionBackend` (then caller-owned).  Shard
        images are independent, so construction fans out cleanly: threads
        overlap the image writing, processes escape the GIL for the
        CPU-bound tree building.  Defaults to serial.  The images are
        byte-identical whichever backend built them (every backend runs the
        same per-shard task), so the choice never affects the index.
    """

    def __init__(
        self,
        matrix: SubstitutionMatrix,
        gap_model: GapModel = FixedGapModel(-1),
        shard_count: int = 1,
        by: str = "residues",
        block_size: int = BLOCK_SIZE_DEFAULT,
        max_partition_size: int = 50_000,
        backend: Union[str, BackendSpec, ExecutionBackend, None] = None,
    ):
        self.matrix = matrix
        self.gap_model = gap_model
        self.planner = ShardPlanner(shard_count, by=by)
        self.block_size = int(block_size)
        self.max_partition_size = int(max_partition_size)
        self.backend = backend

    def build(
        self,
        database: SequenceDatabase,
        directory: PathLike,
        write_database: bool = True,
        tracer=None,
    ) -> ShardCatalog:
        """Build every shard image under ``directory`` and write the catalog.

        The directory is created if needed.  Returns the written catalog.
        Set ``write_database=False`` to skip the FASTA copy (the caller then
        has to supply the identical database when reopening).

        Shard builds run through the configured backend; the catalog is
        written only after every image exists, and its entries are in shard
        order regardless of the order the builds finished in.  Pass a
        :class:`~repro.obs.Tracer` to wrap the build in an ``index_build``
        span (with per-shard child spans on in-process backends; process
        builds ship bare picklable tasks and stay span-free).
        """
        if tracer is None:
            return self._build(database, directory, write_database, None)
        with tracer.span(
            "index_build", shards=self.planner.shard_count, database=database.name
        ) as span:
            catalog = self._build(database, directory, write_database, tracer)
            span.set_attribute("total_residues", database.total_symbols)
            return catalog

    def _build(
        self,
        database: SequenceDatabase,
        directory: PathLike,
        write_database: bool,
        tracer,
    ) -> ShardCatalog:
        directory = str(directory)
        os.makedirs(directory, exist_ok=True)
        plan = self.planner.plan(database)
        logger.info(
            "building sharded index at %s (%d shards, block_size=%d)",
            directory,
            len(plan.specs),
            self.block_size,
        )

        tasks = []
        entries = []
        for spec in plan.specs:
            image_name = f"{spec.identifier()}.oasis"
            tasks.append(
                ShardBuildTask(
                    directory=directory,
                    image_name=image_name,
                    sub_database=plan.slice_database(database, spec),
                    block_size=self.block_size,
                    max_partition_size=self.max_partition_size,
                )
            )
            entries.append(
                ShardEntry(
                    index=spec.index,
                    path=image_name,
                    start_sequence=spec.start_sequence,
                    sequence_count=spec.sequence_count,
                    residues=spec.residues,
                )
            )

        backend, owned = resolve_backend(
            self.backend, default="serial", default_workers=len(tasks)
        )
        run_task = run_shard_build
        if tracer is not None and backend.kind != "processes":
            # In-process backends get per-shard child spans (parented by
            # explicit id: thread-pool workers do not inherit the caller's
            # stack).  Process backends ship bare picklable tasks -- a span
            # closure would not pickle -- so they stay at the build span.
            parent_id = tracer.current_span_id

            def run_task(task):  # noqa: ANN001 - mirrors run_shard_build
                with tracer.span(
                    "shard_build", parent_id=parent_id, image=task.image_name
                ):
                    return run_shard_build(task)

        futures = []
        try:
            # Submit everything up front, then gather in shard order: the
            # backend decides the concurrency, the catalog order stays
            # deterministic either way.
            # The traced closure is only ever installed for in-process
            # backends (the `backend.kind != "processes"` guard above);
            # process backends always get module-level run_shard_build.
            futures = [backend.submit(run_task, task) for task in tasks]  # repro: allow[spawn-submit]
            for future in futures:
                future.result()
        finally:
            # On failure, stop sibling builds that have not started instead
            # of paying for shard images the raised error already orphaned
            # (in-flight builds still finish; no-op on success).
            for future in futures:
                if not future.done():
                    future.cancel()
            if owned:
                backend.close()

        catalog = ShardCatalog(
            database_name=database.name,
            sequence_count=len(database),
            total_residues=database.total_symbols,
            balanced_by=plan.by,
            fingerprint=config_fingerprint(
                self.matrix.name, self.gap_model.per_symbol, self.block_size
            ),
            database_digest=database_digest(database),
            shards=entries,
        )
        if write_database:
            write_fasta(database, os.path.join(directory, DATABASE_FILENAME))
        catalog.save(directory)
        return catalog


def build_sharded_index(
    database: SequenceDatabase,
    directory: PathLike,
    matrix: SubstitutionMatrix,
    gap_model: GapModel = FixedGapModel(-1),
    shard_count: int = 1,
    by: str = "residues",
    block_size: int = BLOCK_SIZE_DEFAULT,
    max_partition_size: Optional[int] = None,
    backend: Union[str, BackendSpec, ExecutionBackend, None] = None,
    tracer=None,
) -> ShardCatalog:
    """Functional one-shot wrapper around :class:`ShardedIndexBuilder`."""
    builder = ShardedIndexBuilder(
        matrix,
        gap_model,
        shard_count=shard_count,
        by=by,
        block_size=block_size,
        backend=backend,
        **({"max_partition_size": max_partition_size} if max_partition_size else {}),
    )
    return builder.build(database, directory, tracer=tracer)
