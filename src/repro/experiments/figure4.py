"""Figure 4: filtering efficiency -- DP columns expanded, OASIS vs S-W.

The paper measures, per query length, how many column-wise dynamic-programming
expansions each algorithm performs.  S-W always expands one column per
database symbol; OASIS only expands columns for the suffix-tree arcs it
visits.  The paper reports that OASIS expands at most 18.5% and on average
3.9% of the columns S-W does; the reproduced numbers should stay in the same
"a few percent on average" regime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.experiments.common import ExperimentConfig, build_protein_dataset, default_config
from repro.experiments.report import format_table
from repro.workloads.engines import OasisAdapter, SmithWatermanAdapter
from repro.workloads.runner import WorkloadRunner, aggregate_by_length


@dataclass
class Figure4Row:
    query_length: int
    query_count: int
    oasis_columns: float
    smith_waterman_columns: float

    @property
    def fraction(self) -> float:
        """OASIS columns as a fraction of S-W columns (the Figure 4 gap)."""
        if self.smith_waterman_columns == 0:
            return 0.0
        return self.oasis_columns / self.smith_waterman_columns


@dataclass
class Figure4Result:
    config: ExperimentConfig
    rows: List[Figure4Row] = field(default_factory=list)

    @property
    def mean_fraction(self) -> float:
        fractions = [row.fraction for row in self.rows if row.smith_waterman_columns > 0]
        return sum(fractions) / len(fractions) if fractions else 0.0

    @property
    def worst_fraction(self) -> float:
        fractions = [row.fraction for row in self.rows if row.smith_waterman_columns > 0]
        return max(fractions) if fractions else 0.0

    def format_table(self) -> str:
        header = ["query_len", "queries", "oasis_cols", "sw_cols", "oasis/sw %"]
        table_rows = [
            [
                row.query_length,
                row.query_count,
                row.oasis_columns,
                row.smith_waterman_columns,
                100.0 * row.fraction,
            ]
            for row in self.rows
        ]
        summary = (
            f"mean fraction: {100.0 * self.mean_fraction:.1f}%   "
            f"worst fraction: {100.0 * self.worst_fraction:.1f}%   "
            f"(paper: 3.9% mean, 18.5% worst)"
        )
        return (
            format_table(header, table_rows, title="Figure 4: columns expanded, OASIS vs S-W")
            + "\n"
            + summary
        )


def run(config: Optional[ExperimentConfig] = None) -> Figure4Result:
    """Reproduce Figure 4 on the synthetic dataset."""
    config = config or default_config()
    dataset = build_protein_dataset(config)
    evalue = config.effective_evalue(dataset.database_symbols)

    adapters = [
        OasisAdapter(dataset.engine, evalue=evalue),
        SmithWatermanAdapter(
            dataset.database,
            dataset.matrix,
            dataset.gap_model,
            evalue=evalue,
            converter=dataset.converter,
        ),
    ]
    summary = WorkloadRunner(adapters).run(dataset.workload)

    oasis_rows = {
        aggregate.query_length: aggregate
        for aggregate in aggregate_by_length(summary.measurements, "OASIS")
    }
    smith_waterman_rows = {
        aggregate.query_length: aggregate
        for aggregate in aggregate_by_length(summary.measurements, "S-W")
    }

    result = Figure4Result(config=config)
    for length in sorted(oasis_rows):
        oasis = oasis_rows[length]
        smith_waterman = smith_waterman_rows[length]
        result.rows.append(
            Figure4Row(
                query_length=length,
                query_count=oasis.query_count,
                oasis_columns=oasis.mean_columns,
                smith_waterman_columns=smith_waterman.mean_columns,
            )
        )
    return result


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(run().format_table())
