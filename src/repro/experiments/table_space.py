"""The space-utilisation table (Section 4.2).

The paper reports that the 40 M-symbol SWISS-PROT index occupies 500 MB,
i.e. 12.5 bytes per symbol -- on par with the most compact suffix-tree
representations known at the time (Kurtz).  This experiment builds the
Section-3.4 disk image for the synthetic database (optionally at several
scales) and reports the same columns: data set size, index size, and bytes per
symbol.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.experiments.common import ExperimentConfig, build_protein_dataset, default_config
from repro.experiments.report import format_table
from repro.storage.builder import build_disk_image
from repro.storage.layout import InternalNodeRecord, LeafNodeRecord
from repro.suffixtree.generalized import GeneralizedSuffixTree

#: The paper's reported space utilisation, for side-by-side display.
PAPER_BYTES_PER_SYMBOL = 12.5


@dataclass
class SpaceRow:
    database_name: str
    database_symbols: int
    sequence_count: int
    internal_nodes: int
    index_size_bytes: int
    bytes_per_symbol: float


@dataclass
class SpaceResult:
    config: ExperimentConfig
    rows: List[SpaceRow] = field(default_factory=list)

    def format_table(self) -> str:
        header = [
            "database",
            "symbols",
            "sequences",
            "internal_nodes",
            "index_MB",
            "bytes/symbol",
        ]
        table_rows = [
            [
                row.database_name,
                row.database_symbols,
                row.sequence_count,
                row.internal_nodes,
                row.index_size_bytes / (1024 * 1024),
                row.bytes_per_symbol,
            ]
            for row in self.rows
        ]
        summary = (
            f"record sizes: internal={InternalNodeRecord.SIZE} B, leaf={LeafNodeRecord.SIZE} B, "
            f"symbols=1 B   paper: {PAPER_BYTES_PER_SYMBOL} bytes/symbol"
        )
        return (
            format_table(header, table_rows, title="Space utilisation of the suffix-tree index")
            + "\n"
            + summary
        )


def run(
    config: Optional[ExperimentConfig] = None,
    extra_configs: Sequence[ExperimentConfig] = (),
) -> SpaceResult:
    """Measure the index space utilisation for one or more dataset scales."""
    config = config or default_config()
    result = SpaceResult(config=config)
    for current in [config, *extra_configs]:
        dataset = build_protein_dataset(current)
        tree = GeneralizedSuffixTree.build(dataset.database)
        handle = tempfile.NamedTemporaryFile(suffix=".oasis", delete=False)
        handle.close()
        try:
            layout = build_disk_image(tree, handle.name, block_size=current.block_size)
            result.rows.append(
                SpaceRow(
                    database_name=f"{dataset.database.name} ({current.scale})",
                    database_symbols=dataset.database.total_symbols,
                    sequence_count=len(dataset.database),
                    internal_nodes=layout.internal_count,
                    index_size_bytes=layout.index_size_bytes,
                    bytes_per_symbol=layout.index_size_bytes / dataset.database.total_symbols,
                )
            )
        finally:
            os.unlink(handle.name)
    return result


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(run().format_table())
