"""Figure 8: buffer-pool hit ratios per suffix-tree component.

The paper breaks the buffer hit ratio down by the three disk regions (symbols,
internal nodes, leaf nodes) as the pool size varies.  Because only the
internal nodes are clustered on disk (siblings contiguous, level order), they
are the least sensitive to a small pool, whereas symbol and leaf accesses are
"by their nature random" and their hit ratios collapse first -- that ordering
is the shape this experiment reproduces.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.engine import OasisEngine
from repro.experiments.common import ExperimentConfig, build_protein_dataset, default_config
from repro.experiments.figure7 import DEFAULT_POOL_FRACTIONS, DEFAULT_QUERY_LIMIT
from repro.experiments.report import format_table
from repro.storage.buffer_pool import Region
from repro.storage.builder import build_disk_image
from repro.storage.disk_tree import DiskSuffixTree
from repro.suffixtree.generalized import GeneralizedSuffixTree


@dataclass
class Figure8Row:
    pool_bytes: int
    pool_fraction_of_index: float
    symbols_hit_ratio: float
    internal_hit_ratio: float
    leaf_hit_ratio: float
    overall_hit_ratio: float


@dataclass
class Figure8Result:
    config: ExperimentConfig
    index_size_bytes: int = 0
    rows: List[Figure8Row] = field(default_factory=list)

    def internal_nodes_most_resilient(self) -> bool:
        """Whether internal nodes keep the best hit ratio at the smallest pool."""
        if not self.rows:
            return False
        smallest = self.rows[0]
        return smallest.internal_hit_ratio >= max(
            smallest.symbols_hit_ratio, smallest.leaf_hit_ratio
        )

    def format_table(self) -> str:
        header = ["pool_MB", "pool/index", "symbols", "internal", "leaves", "overall"]
        table_rows = [
            [
                row.pool_bytes / (1024 * 1024),
                row.pool_fraction_of_index,
                row.symbols_hit_ratio,
                row.internal_hit_ratio,
                row.leaf_hit_ratio,
                row.overall_hit_ratio,
            ]
            for row in self.rows
        ]
        summary = (
            "internal nodes most resilient at the smallest pool: "
            f"{self.internal_nodes_most_resilient()}   "
            "(paper: internal nodes are the only disk-layout-optimised component)"
        )
        return (
            format_table(header, table_rows, title="Figure 8: buffer hit ratios per component")
            + "\n"
            + summary
        )


def run(
    config: Optional[ExperimentConfig] = None,
    pool_fractions: Sequence[float] = DEFAULT_POOL_FRACTIONS,
    query_limit: int = DEFAULT_QUERY_LIMIT,
    image_path: Optional[str] = None,
) -> Figure8Result:
    """Reproduce Figure 8 on the synthetic dataset."""
    config = config or default_config()
    dataset = build_protein_dataset(config)
    queries = dataset.workload.texts()[:query_limit]

    owns_image = image_path is None
    if image_path is None:
        handle = tempfile.NamedTemporaryFile(suffix=".oasis", delete=False)
        handle.close()
        image_path = handle.name

    try:
        tree = GeneralizedSuffixTree.build(dataset.database)
        layout = build_disk_image(tree, image_path, block_size=config.block_size)
        result = Figure8Result(config=config, index_size_bytes=layout.index_size_bytes)

        for fraction in sorted(pool_fractions):
            pool_bytes = max(config.block_size, int(layout.index_size_bytes * fraction))
            disk_tree = DiskSuffixTree(
                image_path, dataset.database, buffer_pool_bytes=pool_bytes
            )
            engine = OasisEngine(
                disk_tree, dataset.matrix, dataset.gap_model, converter=dataset.converter
            )
            evalue = config.effective_evalue(dataset.database_symbols)
            for query in queries:
                engine.search(query, evalue=evalue)
            statistics = disk_tree.statistics
            result.rows.append(
                Figure8Row(
                    pool_bytes=pool_bytes,
                    pool_fraction_of_index=fraction,
                    symbols_hit_ratio=statistics.region_hit_ratio(Region.SYMBOLS),
                    internal_hit_ratio=statistics.region_hit_ratio(Region.INTERNAL_NODES),
                    leaf_hit_ratio=statistics.region_hit_ratio(Region.LEAF_NODES),
                    overall_hit_ratio=statistics.hit_ratio,
                )
            )
            disk_tree.close()
        return result
    finally:
        if owns_image and os.path.exists(image_path):
            os.unlink(image_path)


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(run().format_table())
