"""Experiment drivers: one module per table/figure of the paper's evaluation.

Each module exposes a ``run(config)`` function returning a result object with
the rows/series the corresponding figure plots, plus a ``format_table`` (or
``format_report``) method that renders them as text.  The benchmark harness in
``benchmarks/`` calls these drivers and prints their tables, so regenerating
any figure is::

    pytest benchmarks/test_bench_figure3.py --benchmark-only -s

See EXPERIMENTS.md for the paper-vs-measured comparison of every experiment.
"""

from repro.experiments.common import (
    ExperimentConfig,
    ProteinDataset,
    available_scales,
    build_protein_dataset,
    default_config,
)

__all__ = [
    "ExperimentConfig",
    "ProteinDataset",
    "available_scales",
    "build_protein_dataset",
    "default_config",
]
