"""Figure 6: effect of selectivity (E = 1 vs E = 20 000) on OASIS query time.

A low E-value (high selectivity) raises OASIS's ``min_score`` threshold, which
prunes the search harder.  The paper observes that the benefit is dramatic for
the shortest queries (where a selective search behaves almost like exact
suffix-tree lookup) and shrinks as queries get longer, because uncovering the
strong matches already forces OASIS over most of the ground needed for the
weak ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.common import ExperimentConfig, build_protein_dataset, default_config
from repro.experiments.report import format_table
from repro.workloads.engines import OasisAdapter
from repro.workloads.runner import WorkloadRunner, aggregate_by_length

#: The two extremes the paper plots.
DEFAULT_EVALUES = (1.0, 20_000.0)


@dataclass
class Figure6Row:
    query_length: int
    query_count: int
    #: Mean seconds per E-value, keyed by the E-value.
    seconds: Dict[float, float] = field(default_factory=dict)
    columns: Dict[float, float] = field(default_factory=dict)
    hits: Dict[float, float] = field(default_factory=dict)


@dataclass
class Figure6Result:
    config: ExperimentConfig
    evalues: Sequence[float] = DEFAULT_EVALUES
    rows: List[Figure6Row] = field(default_factory=list)

    def speedup_for_length(self, query_length: int) -> float:
        """How much faster the selective (lowest-E) search is at one length."""
        for row in self.rows:
            if row.query_length == query_length:
                selective = row.seconds.get(min(self.evalues), 0.0)
                relaxed = row.seconds.get(max(self.evalues), 0.0)
                return relaxed / selective if selective else 0.0
        return 0.0

    def format_table(self) -> str:
        low, high = min(self.evalues), max(self.evalues)
        header = [
            "query_len",
            "queries",
            f"E={low:g} s",
            f"E={high:g} s",
            f"E={low:g} hits",
            f"E={high:g} hits",
            "relaxed/selective",
        ]
        table_rows = []
        for row in self.rows:
            selective = row.seconds.get(low, 0.0)
            relaxed = row.seconds.get(high, 0.0)
            table_rows.append(
                [
                    row.query_length,
                    row.query_count,
                    selective,
                    relaxed,
                    row.hits.get(low, 0.0),
                    row.hits.get(high, 0.0),
                    relaxed / selective if selective else None,
                ]
            )
        return format_table(
            header, table_rows, title="Figure 6: effect of selectivity on OASIS query time"
        )


def run(
    config: Optional[ExperimentConfig] = None,
    evalues: Sequence[float] = DEFAULT_EVALUES,
) -> Figure6Result:
    """Reproduce Figure 6 on the synthetic dataset."""
    config = config or default_config()
    dataset = build_protein_dataset(config)

    result = Figure6Result(config=config, evalues=tuple(evalues))
    per_evalue_aggregates = {}
    for evalue in evalues:
        effective = config.effective_evalue(dataset.database_symbols, evalue)
        adapter = OasisAdapter(dataset.engine, evalue=effective, name=f"OASIS(E={evalue:g})")
        summary = WorkloadRunner([adapter]).run(dataset.workload)
        per_evalue_aggregates[evalue] = {
            aggregate.query_length: aggregate
            for aggregate in aggregate_by_length(summary.measurements, adapter.name)
        }

    lengths = sorted(per_evalue_aggregates[evalues[0]].keys())
    for length in lengths:
        row = Figure6Row(
            query_length=length,
            query_count=per_evalue_aggregates[evalues[0]][length].query_count,
        )
        for evalue in evalues:
            aggregate = per_evalue_aggregates[evalue].get(length)
            if aggregate is None:
                continue
            row.seconds[evalue] = aggregate.mean_seconds
            row.columns[evalue] = aggregate.mean_columns
            row.hits[evalue] = aggregate.mean_hits
        result.rows.append(row)
    return result


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(run().format_table())
