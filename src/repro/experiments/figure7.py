"""Figure 7: effect of the buffer pool size on mean query time.

The paper varies the buffer pool from 32 MB to 512 MB against a ~500 MB index
and observes that performance degrades sharply once the pool is much smaller
than the index (57.5% slower when only a quarter of the tree fits) and
flattens once the whole structure fits in memory.

The reproduction builds the Section-3.4 disk image for the synthetic database,
then runs a slice of the workload through a :class:`DiskSuffixTree` whose pool
capacity sweeps a range of fractions of the index size.  Because a modern OS
page cache hides true read latency, the reported per-query time is the
measured compute time plus the simulated I/O time charged by the buffer pool
(``config.simulated_miss_latency`` seconds per physical block read, 5 ms by
default -- a 2003-era disk seek).
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.engine import OasisEngine
from repro.experiments.common import ExperimentConfig, build_protein_dataset, default_config
from repro.experiments.report import format_table
from repro.storage.builder import build_disk_image
from repro.storage.disk_tree import DiskSuffixTree
from repro.suffixtree.generalized import GeneralizedSuffixTree

#: Pool capacities examined, as fractions of the index size.
DEFAULT_POOL_FRACTIONS = (0.0625, 0.125, 0.25, 0.5, 1.0, 2.0)

#: How many workload queries the sweep uses (disk-cursor traversal is slower
#: than the in-memory tree, and the shape emerges after a handful of queries).
DEFAULT_QUERY_LIMIT = 15


@dataclass
class Figure7Row:
    pool_bytes: int
    pool_fraction_of_index: float
    mean_compute_seconds: float
    mean_simulated_io_seconds: float
    hit_ratio: float

    @property
    def mean_total_seconds(self) -> float:
        return self.mean_compute_seconds + self.mean_simulated_io_seconds


@dataclass
class Figure7Result:
    config: ExperimentConfig
    index_size_bytes: int = 0
    rows: List[Figure7Row] = field(default_factory=list)

    def degradation(self) -> float:
        """Slow-down of the smallest pool relative to the largest."""
        if len(self.rows) < 2:
            return 0.0
        smallest = self.rows[0].mean_total_seconds
        largest = self.rows[-1].mean_total_seconds
        return smallest / largest if largest else 0.0

    def format_table(self) -> str:
        header = [
            "pool_MB",
            "pool/index",
            "compute_s",
            "sim_io_s",
            "total_s",
            "hit_ratio",
        ]
        table_rows = [
            [
                row.pool_bytes / (1024 * 1024),
                row.pool_fraction_of_index,
                row.mean_compute_seconds,
                row.mean_simulated_io_seconds,
                row.mean_total_seconds,
                row.hit_ratio,
            ]
            for row in self.rows
        ]
        summary = (
            f"index size: {self.index_size_bytes / (1024 * 1024):.1f} MB   "
            f"smallest-pool slow-down vs largest: {self.degradation():.1f}x   "
            f"(paper: sharp degradation below ~1/4 of the index, flat once it fits)"
        )
        return (
            format_table(header, table_rows, title="Figure 7: effect of buffer pool size")
            + "\n"
            + summary
        )


def run(
    config: Optional[ExperimentConfig] = None,
    pool_fractions: Sequence[float] = DEFAULT_POOL_FRACTIONS,
    query_limit: int = DEFAULT_QUERY_LIMIT,
    image_path: Optional[str] = None,
) -> Figure7Result:
    """Reproduce Figure 7 on the synthetic dataset."""
    config = config or default_config()
    dataset = build_protein_dataset(config)
    queries = dataset.workload.texts()[:query_limit]

    owns_image = image_path is None
    if image_path is None:
        handle = tempfile.NamedTemporaryFile(suffix=".oasis", delete=False)
        handle.close()
        image_path = handle.name

    try:
        tree = GeneralizedSuffixTree.build(dataset.database)
        layout = build_disk_image(tree, image_path, block_size=config.block_size)
        result = Figure7Result(config=config, index_size_bytes=layout.index_size_bytes)

        for fraction in sorted(pool_fractions):
            pool_bytes = max(config.block_size, int(layout.index_size_bytes * fraction))
            disk_tree = DiskSuffixTree(
                image_path,
                dataset.database,
                buffer_pool_bytes=pool_bytes,
                simulated_miss_latency=config.simulated_miss_latency,
            )
            engine = OasisEngine(
                disk_tree, dataset.matrix, dataset.gap_model, converter=dataset.converter
            )
            compute_seconds = 0.0
            evalue = config.effective_evalue(dataset.database_symbols)
            for query in queries:
                search_result = engine.search(query, evalue=evalue)
                compute_seconds += search_result.elapsed_seconds
            statistics = disk_tree.statistics
            result.rows.append(
                Figure7Row(
                    pool_bytes=pool_bytes,
                    pool_fraction_of_index=fraction,
                    mean_compute_seconds=compute_seconds / len(queries),
                    mean_simulated_io_seconds=statistics.simulated_io_seconds / len(queries),
                    hit_ratio=statistics.hit_ratio,
                )
            )
            disk_tree.close()
        return result
    finally:
        if owns_image and os.path.exists(image_path):
            os.unlink(image_path)


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(run().format_table())
