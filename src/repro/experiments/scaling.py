"""Scaling experiment: why OASIS's advantage grows with the database.

The paper evaluates a 40 M-residue database; a pure-Python reproduction runs
on databases two to three orders of magnitude smaller, which compresses the
wall-clock gap between OASIS and S-W (see EXPERIMENTS.md).  This experiment
makes the underlying scaling law visible: S-W's work is exactly one DP column
per database symbol (linear), while the OASIS search frontier is governed by
the number of *distinct* tree paths that keep a viable alignment alive and
therefore grows sub-linearly.  Sweeping the database size and plotting the
fraction of columns OASIS expands shows the fraction falling as the database
grows -- the trend that produces the paper's order-of-magnitude speed-ups at
SWISS-PROT scale.

This experiment is an extension of the paper (it has no corresponding figure);
it exists to connect our scaled-down measurements to the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

from repro.core.engine import OasisEngine
from repro.datagen.motifs import MotifWorkloadGenerator
from repro.datagen.protein import SwissProtLikeGenerator
from repro.experiments.common import ExperimentConfig, default_config
from repro.experiments.report import format_table
from repro.scoring.data import load_matrix
from repro.scoring.gaps import FixedGapModel

#: Number of protein families per sweep point (database size grows with it).
DEFAULT_FAMILY_COUNTS = (8, 16, 32, 64)
DEFAULT_QUERY_LIMIT = 8


@dataclass
class ScalingRow:
    family_count: int
    database_symbols: int
    smith_waterman_columns: int
    oasis_columns: float
    oasis_seconds: float

    @property
    def fraction(self) -> float:
        return self.oasis_columns / self.smith_waterman_columns if self.smith_waterman_columns else 0.0


@dataclass
class ScalingResult:
    config: ExperimentConfig
    rows: List[ScalingRow] = field(default_factory=list)

    def fraction_shrinks(self) -> bool:
        """Whether the OASIS/S-W work ratio falls as the database grows."""
        if len(self.rows) < 2:
            return False
        return self.rows[-1].fraction < self.rows[0].fraction

    def format_table(self) -> str:
        header = ["families", "db_symbols", "sw_cols", "oasis_cols", "oasis/sw %", "oasis_s"]
        table_rows = [
            [
                row.family_count,
                row.database_symbols,
                row.smith_waterman_columns,
                row.oasis_columns,
                100.0 * row.fraction,
                row.oasis_seconds,
            ]
            for row in self.rows
        ]
        summary = (
            "the OASIS work fraction must shrink as the database grows: "
            f"{self.fraction_shrinks()}"
        )
        return (
            format_table(
                header, table_rows, title="Scaling: OASIS work relative to S-W vs database size"
            )
            + "\n"
            + summary
        )


def run(
    config: Optional[ExperimentConfig] = None,
    family_counts: Sequence[int] = DEFAULT_FAMILY_COUNTS,
    query_limit: int = DEFAULT_QUERY_LIMIT,
) -> ScalingResult:
    """Sweep the database size and measure the OASIS work fraction."""
    config = config or default_config()
    matrix = load_matrix(config.matrix_name)
    gap_model = FixedGapModel(config.gap_penalty)
    result = ScalingResult(config=config)

    # One fixed query workload drawn from the smallest database's families so
    # that every sweep point answers the same queries.
    base_generator = SwissProtLikeGenerator(
        seed=config.seed, family_count=min(family_counts), singleton_count=10
    )
    base_generator.generate()
    queries = [
        q.text
        for q in MotifWorkloadGenerator(
            base_generator, seed=config.seed + 1, query_count=query_limit
        ).generate()
    ]

    for family_count in family_counts:
        generator = SwissProtLikeGenerator(
            seed=config.seed,
            family_count=family_count,
            singleton_count=10 + family_count,
        )
        database = generator.generate()
        engine = OasisEngine.build(database, matrix=matrix, gap_model=gap_model)
        evalue = config.effective_evalue(database.total_symbols)

        total_columns = 0.0
        total_seconds = 0.0
        for query in queries:
            search_result = engine.search(query, evalue=evalue)
            total_columns += search_result.columns_expanded
            total_seconds += search_result.elapsed_seconds

        result.rows.append(
            ScalingRow(
                family_count=family_count,
                database_symbols=database.total_symbols,
                smith_waterman_columns=database.total_symbols * len(queries),
                oasis_columns=total_columns,
                oasis_seconds=total_seconds,
            )
        )
    return result


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(run().format_table())
