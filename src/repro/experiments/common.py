"""Shared experiment configuration and dataset construction.

Every experiment of Section 4 runs against the same kind of dataset: a
SWISS-PROT-like protein database, a ProClass-like short-query workload, PAM30
scoring with a fixed gap penalty, and selectivity expressed as an E-value.
This module owns that configuration, the scale presets (the paper's 40 M
residues are far beyond what a pure-Python suffix tree can index in a
benchmark run -- see DESIGN.md), and a small cache so that the per-figure
benchmarks that share a configuration also share the constructed index.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.core.engine import OasisEngine
from repro.core.evalue import SelectivityConverter
from repro.datagen.motifs import MotifWorkload, MotifWorkloadGenerator
from repro.datagen.protein import SwissProtLikeGenerator
from repro.scoring.data import load_matrix
from repro.scoring.gaps import FixedGapModel
from repro.scoring.matrix import SubstitutionMatrix
from repro.sequences.database import SequenceDatabase

#: Environment variable selecting the benchmark scale ("tiny", "small", "medium").
SCALE_ENVIRONMENT_VARIABLE = "OASIS_BENCH_SCALE"

#: Per-scale dataset sizes.  "small" (the default) keeps the full benchmark
#: suite in the tens of minutes on a laptop; "medium" takes noticeably longer
#: but sharpens the OASIS-vs-S-W gap; "tiny" exists for smoke tests.
_SCALE_PRESETS: Dict[str, Dict[str, int]] = {
    "tiny": {
        "family_count": 6,
        "members_low": 2,
        "members_high": 4,
        "ancestor_low": 40,
        "ancestor_high": 120,
        "singleton_count": 8,
        "singleton_low": 7,
        "singleton_high": 150,
        "query_count": 12,
    },
    "small": {
        "family_count": 45,
        "members_low": 4,
        "members_high": 8,
        "ancestor_low": 100,
        "ancestor_high": 400,
        "singleton_count": 60,
        "singleton_low": 7,
        "singleton_high": 500,
        "query_count": 60,
    },
    "medium": {
        "family_count": 120,
        "members_low": 4,
        "members_high": 9,
        "ancestor_low": 100,
        "ancestor_high": 600,
        "singleton_count": 200,
        "singleton_low": 7,
        "singleton_high": 800,
        "query_count": 100,
    },
}


def available_scales() -> Tuple[str, ...]:
    """The known scale presets."""
    return tuple(sorted(_SCALE_PRESETS))


@dataclass(frozen=True)
class ExperimentConfig:
    """Configuration shared by every experiment.

    The defaults reproduce the paper's setup: PAM30, a fixed gap penalty, an
    E-value of 20 000 (the BLAST-recommended value for short protein queries)
    and a short-peptide workload.
    """

    seed: int = 7
    scale: str = "small"
    matrix_name: str = "PAM30"
    gap_penalty: int = -8
    evalue: float = 20_000.0
    query_count: Optional[int] = None
    query_length_range: Tuple[int, int] = (6, 56)
    query_mean_length: float = 16.0
    block_size: int = 2048
    simulated_miss_latency: float = 0.005
    #: The SWISS-PROT size the paper's E-values refer to.  E-values scale with
    #: the search space (Equation 2), so quoting "E = 20 000" against a
    #: scaled-down synthetic database would make the threshold vacuous;
    #: scaling E by ``our size / paper size`` keeps the *score threshold*
    #: (Equation 3) -- and therefore the selectivity the paper configured --
    #: unchanged.  Set ``scale_evalue_to_database`` to False to disable.
    paper_database_size: int = 40_000_000
    scale_evalue_to_database: bool = True

    def effective_evalue(self, database_symbols: int, evalue: Optional[float] = None) -> float:
        """Translate a paper E-value into one appropriate for our database size."""
        nominal = self.evalue if evalue is None else evalue
        if not self.scale_evalue_to_database:
            return nominal
        return nominal * database_symbols / self.paper_database_size

    def preset(self) -> Dict[str, int]:
        try:
            return _SCALE_PRESETS[self.scale]
        except KeyError:
            raise ValueError(
                f"unknown scale {self.scale!r}; available: {', '.join(available_scales())}"
            ) from None

    def effective_query_count(self) -> int:
        return self.query_count if self.query_count is not None else self.preset()["query_count"]

    def cache_key(self) -> Tuple:
        return (
            self.seed,
            self.scale,
            self.matrix_name,
            self.gap_penalty,
            self.query_count,
            self.query_length_range,
            self.query_mean_length,
        )


def default_config(scale: Optional[str] = None, **overrides) -> ExperimentConfig:
    """The default configuration, honouring ``OASIS_BENCH_SCALE``."""
    if scale is None:
        scale = os.environ.get(SCALE_ENVIRONMENT_VARIABLE, "small")
    config = ExperimentConfig(scale=scale)
    if overrides:
        config = replace(config, **overrides)
    return config


@dataclass
class ProteinDataset:
    """Everything the protein experiments need, constructed once."""

    config: ExperimentConfig
    database: SequenceDatabase
    workload: MotifWorkload
    generator: SwissProtLikeGenerator
    matrix: SubstitutionMatrix
    gap_model: FixedGapModel
    converter: SelectivityConverter
    engine: OasisEngine = field(repr=False, default=None)  # type: ignore[assignment]

    @property
    def database_symbols(self) -> int:
        return self.database.total_symbols


_DATASET_CACHE: Dict[Tuple, ProteinDataset] = {}


def build_protein_dataset(config: Optional[ExperimentConfig] = None) -> ProteinDataset:
    """Build (or fetch from cache) the dataset for a configuration.

    The OASIS in-memory index is built eagerly because almost every experiment
    needs it; the disk-resident index of Figures 7-8 is built by those
    experiments on top of the same database.
    """
    config = config or default_config()
    key = config.cache_key()
    cached = _DATASET_CACHE.get(key)
    if cached is not None:
        return cached

    preset = config.preset()
    generator = SwissProtLikeGenerator(
        seed=config.seed,
        family_count=preset["family_count"],
        members_per_family=(preset["members_low"], preset["members_high"]),
        ancestor_length=(preset["ancestor_low"], preset["ancestor_high"]),
        singleton_count=preset["singleton_count"],
        singleton_length=(preset["singleton_low"], preset["singleton_high"]),
    )
    database = generator.generate()
    workload = MotifWorkloadGenerator(
        generator,
        seed=config.seed + 1,
        query_count=config.effective_query_count(),
        length_range=config.query_length_range,
        mean_length=config.query_mean_length,
    ).generate()

    matrix = load_matrix(config.matrix_name)
    gap_model = FixedGapModel(config.gap_penalty)
    converter = SelectivityConverter(matrix, database)
    engine = OasisEngine.build(database, matrix=matrix, gap_model=gap_model)
    # Reuse the engine's converter so every adapter shares identical statistics.
    engine.converter = converter

    dataset = ProteinDataset(
        config=config,
        database=database,
        workload=workload,
        generator=generator,
        matrix=matrix,
        gap_model=gap_model,
        converter=converter,
        engine=engine,
    )
    _DATASET_CACHE[key] = dataset
    return dataset


def clear_dataset_cache() -> None:
    """Drop cached datasets (used by tests that need isolation)."""
    _DATASET_CACHE.clear()
