"""Plain-text table formatting for experiment reports."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float, None]


def format_cell(value: Cell, precision: int = 4) -> str:
    """Render one table cell: floats compactly, None as a dash."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]], title: str = "") -> str:
    """Render an aligned text table with a header rule.

    >>> print(format_table(["a", "b"], [[1, 2.5]]))
    a  b
    ----
    1  2.5
    """
    rendered_rows: List[List[str]] = [[format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_line(list(headers)))
    lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    for row in rendered_rows:
        lines.append(render_line(row))
    return "\n".join(lines)


def format_ratio(numerator: float, denominator: float) -> str:
    """Render a speed-up/shrink factor such as ``12.3x`` (or ``-`` if undefined)."""
    if denominator == 0 or numerator == 0:
        return "-"
    return f"{numerator / denominator:.1f}x"
