"""Figure 9: online behaviour -- when does each result arrive?

The paper runs a single 13-residue motif (DKDGDGCITTKEL) with E = 20 000 and
plots the time at which OASIS returns each of its ~5 900 results; the first 40
arrive within 4/100ths of a second, long before S-W or BLAST would have
produced anything (both must finish the whole query first).

The reproduction picks a representative motif from the synthetic workload
(13 residues by default, the paper's query length), streams OASIS's results
through the online interface and records the emission timeline; the total
times of S-W and the BLAST-like baseline are reported alongside for the same
comparison the paper makes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.experiments.common import ExperimentConfig, build_protein_dataset, default_config
from repro.experiments.report import format_table
from repro.workloads.engines import BlastAdapter, SmithWatermanAdapter

#: Cumulative-result checkpoints reported in the table.
DEFAULT_CHECKPOINTS = (1, 5, 10, 20, 40, 100, 500)


@dataclass
class Figure9Result:
    config: ExperimentConfig
    query: str = ""
    #: (seconds since query start, cumulative results emitted)
    timeline: List[Tuple[float, int]] = field(default_factory=list)
    total_results: int = 0
    oasis_total_seconds: float = 0.0
    smith_waterman_total_seconds: float = 0.0
    blast_total_seconds: float = 0.0
    checkpoints: Tuple[int, ...] = DEFAULT_CHECKPOINTS

    def time_for_first(self, count: int) -> Optional[float]:
        for elapsed, cumulative in self.timeline:
            if cumulative >= count:
                return elapsed
        return None

    def format_table(self) -> str:
        header = ["results returned", "seconds"]
        rows = []
        for checkpoint in self.checkpoints:
            elapsed = self.time_for_first(checkpoint)
            if elapsed is not None:
                rows.append([checkpoint, elapsed])
        rows.append([f"all {self.total_results} (OASIS)", self.oasis_total_seconds])
        rows.append(["S-W (first and only output)", self.smith_waterman_total_seconds])
        rows.append(["BLAST (first and only output)", self.blast_total_seconds])
        summary = (
            f"query: {self.query} (length {len(self.query)})   "
            f"results: {self.total_results}   "
            "(paper: first 40 results in under 0.04 s, full S-W/BLAST must finish first)"
        )
        return (
            format_table(header, rows, title="Figure 9: online behaviour of OASIS")
            + "\n"
            + summary
        )


def select_query(dataset, target_length: int = 13) -> str:
    """Pick the workload motif closest to the paper's 13-residue query."""
    best = min(dataset.workload.queries, key=lambda q: abs(q.length - target_length))
    return best.text


def run(
    config: Optional[ExperimentConfig] = None,
    query: Optional[str] = None,
    query_length: int = 13,
) -> Figure9Result:
    """Reproduce Figure 9 on the synthetic dataset."""
    config = config or default_config()
    dataset = build_protein_dataset(config)
    if query is None:
        query = select_query(dataset, target_length=query_length)

    result = Figure9Result(config=config, query=query)
    evalue = config.effective_evalue(dataset.database_symbols)

    # OASIS: stream hits and log their emission times.
    timeline: List[Tuple[float, int]] = []
    count = 0
    for hit in dataset.engine.search_online(query, evalue=evalue):
        count += 1
        timeline.append((hit.emitted_at or 0.0, count))
    result.timeline = timeline
    result.total_results = count
    result.oasis_total_seconds = timeline[-1][0] if timeline else 0.0

    # The baselines can only answer after completing the whole query.
    smith_waterman = SmithWatermanAdapter(
        dataset.database,
        dataset.matrix,
        dataset.gap_model,
        evalue=evalue,
        converter=dataset.converter,
    )
    result.smith_waterman_total_seconds = smith_waterman.run(query).elapsed_seconds

    blast = BlastAdapter(
        dataset.database,
        dataset.matrix,
        dataset.gap_model,
        evalue=evalue,
        converter=dataset.converter,
    )
    result.blast_total_seconds = blast.run(query).elapsed_seconds
    return result


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(run().format_table())
