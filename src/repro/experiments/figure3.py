"""Figure 3: mean query time vs query length for OASIS, BLAST and S-W.

The paper runs the 100-motif ProClass workload against SWISS-PROT with
E = 20 000 (the BLAST-recommended value for short protein queries) and plots
the mean execution time per query length on a log scale.  The headline shapes:

* OASIS is an order of magnitude (or more) faster than S-W at every length;
* OASIS is comparable to -- often faster than -- BLAST.

``run`` reproduces the same sweep on the synthetic dataset and reports, per
query length: the mean time of each engine and the OASIS speed-up over S-W.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.common import ExperimentConfig, build_protein_dataset, default_config
from repro.experiments.report import format_table
from repro.workloads.engines import BlastAdapter, OasisAdapter, SmithWatermanAdapter
from repro.workloads.runner import WorkloadRunner, aggregate_by_length


@dataclass
class Figure3Row:
    """One per-query-length row of the Figure 3 series."""

    query_length: int
    query_count: int
    oasis_seconds: float
    blast_seconds: float
    smith_waterman_seconds: float

    @property
    def speedup_over_smith_waterman(self) -> float:
        if self.oasis_seconds == 0:
            return 0.0
        return self.smith_waterman_seconds / self.oasis_seconds

    @property
    def ratio_to_blast(self) -> float:
        if self.blast_seconds == 0:
            return 0.0
        return self.oasis_seconds / self.blast_seconds


@dataclass
class Figure3Result:
    """The full Figure 3 reproduction."""

    config: ExperimentConfig
    rows: List[Figure3Row] = field(default_factory=list)
    mean_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def overall_speedup_over_smith_waterman(self) -> float:
        oasis = self.mean_seconds.get("OASIS", 0.0)
        smith_waterman = self.mean_seconds.get("S-W", 0.0)
        return smith_waterman / oasis if oasis else 0.0

    def format_table(self) -> str:
        header = [
            "query_len",
            "queries",
            "oasis_s",
            "blast_s",
            "sw_s",
            "sw/oasis",
        ]
        table_rows = [
            [
                row.query_length,
                row.query_count,
                row.oasis_seconds,
                row.blast_seconds,
                row.smith_waterman_seconds,
                row.speedup_over_smith_waterman,
            ]
            for row in self.rows
        ]
        summary = (
            f"overall mean (s): OASIS={self.mean_seconds.get('OASIS', 0):.4f} "
            f"BLAST={self.mean_seconds.get('BLAST', 0):.4f} "
            f"S-W={self.mean_seconds.get('S-W', 0):.4f} "
            f"| OASIS speed-up over S-W: {self.overall_speedup_over_smith_waterman:.1f}x"
        )
        return (
            format_table(header, table_rows, title="Figure 3: mean query time vs query length")
            + "\n"
            + summary
        )


def run(config: Optional[ExperimentConfig] = None) -> Figure3Result:
    """Reproduce Figure 3 on the synthetic dataset."""
    config = config or default_config()
    dataset = build_protein_dataset(config)
    evalue = config.effective_evalue(dataset.database_symbols)

    adapters = [
        OasisAdapter(dataset.engine, evalue=evalue),
        BlastAdapter(
            dataset.database,
            dataset.matrix,
            dataset.gap_model,
            evalue=evalue,
            converter=dataset.converter,
        ),
        SmithWatermanAdapter(
            dataset.database,
            dataset.matrix,
            dataset.gap_model,
            evalue=evalue,
            converter=dataset.converter,
        ),
    ]
    summary = WorkloadRunner(adapters).run(dataset.workload)

    per_engine = {
        adapter.name: {
            aggregate.query_length: aggregate
            for aggregate in aggregate_by_length(summary.measurements, adapter.name)
        }
        for adapter in adapters
    }
    lengths = sorted(per_engine["OASIS"].keys())

    result = Figure3Result(config=config)
    for length in lengths:
        oasis = per_engine["OASIS"][length]
        blast = per_engine["BLAST"].get(length)
        smith_waterman = per_engine["S-W"].get(length)
        result.rows.append(
            Figure3Row(
                query_length=length,
                query_count=oasis.query_count,
                oasis_seconds=oasis.mean_seconds,
                blast_seconds=blast.mean_seconds if blast else 0.0,
                smith_waterman_seconds=smith_waterman.mean_seconds if smith_waterman else 0.0,
            )
        )
    for adapter in adapters:
        result.mean_seconds[adapter.name] = summary.mean_seconds(adapter.name)
    return result


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(run().format_table())
