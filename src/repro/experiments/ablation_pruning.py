"""Ablation: how much work does each OASIS pruning rule save?

Section 3.2 introduces three alignment-pruning rules (non-positive scores,
dominated-by-path-maximum, threshold-unreachable).  Disabling any of them
never changes the result set -- only the amount of work -- so this experiment
runs the same query slice with different rule subsets and reports the DP
columns expanded and the wall-clock time of each configuration, together with
a verification that all configurations returned identical results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.oasis import OasisSearch
from repro.experiments.common import ExperimentConfig, build_protein_dataset, default_config
from repro.experiments.report import format_table

#: The rule subsets examined (name -> OasisSearch keyword arguments).
DEFAULT_VARIANTS: Dict[str, Dict[str, bool]] = {
    "all rules (paper)": {},
    "no dominated-pruning": {"prune_dominated": False},
    "no threshold-pruning": {"prune_threshold": False},
    "non-positive only": {"prune_dominated": False, "prune_threshold": False},
    "no pruning at all": {
        "prune_non_positive": False,
        "prune_dominated": False,
        "prune_threshold": False,
    },
}

DEFAULT_QUERY_LIMIT = 6


@dataclass
class AblationRow:
    variant: str
    columns_expanded: int
    nodes_expanded: int
    elapsed_seconds: float

    def relative_columns(self, baseline_columns: int) -> float:
        return self.columns_expanded / baseline_columns if baseline_columns else 0.0


@dataclass
class AblationResult:
    config: ExperimentConfig
    rows: List[AblationRow] = field(default_factory=list)
    results_identical: bool = True

    def format_table(self) -> str:
        baseline = self.rows[0].columns_expanded if self.rows else 0
        header = ["variant", "columns", "nodes", "seconds", "columns vs paper"]
        table_rows = [
            [
                row.variant,
                row.columns_expanded,
                row.nodes_expanded,
                row.elapsed_seconds,
                row.relative_columns(baseline),
            ]
            for row in self.rows
        ]
        summary = f"all variants returned identical results: {self.results_identical}"
        return (
            format_table(header, table_rows, title="Ablation: OASIS pruning rules (Section 3.2)")
            + "\n"
            + summary
        )


def run(
    config: Optional[ExperimentConfig] = None,
    variants: Dict[str, Dict[str, bool]] = DEFAULT_VARIANTS,
    query_limit: int = DEFAULT_QUERY_LIMIT,
) -> AblationResult:
    """Run the pruning-rule ablation on a slice of the workload."""
    config = config or default_config()
    dataset = build_protein_dataset(config)
    queries: Sequence[str] = dataset.workload.texts()[:query_limit]
    evalue = config.effective_evalue(dataset.database_symbols)

    result = AblationResult(config=config)
    reference_scores = None
    for variant_name, flags in variants.items():
        search = OasisSearch(dataset.engine.cursor, dataset.matrix, dataset.gap_model, **flags)
        columns = 0
        nodes = 0
        started = time.perf_counter()
        collected: List[Dict[str, int]] = []
        for query in queries:
            min_score = dataset.converter.min_score_for_evalue(evalue, len(query))
            search_result = search.search(query, min_score=min_score)
            columns += search_result.columns_expanded
            nodes += search.statistics.nodes_expanded
            collected.append(search_result.scores_by_sequence())
        elapsed = time.perf_counter() - started

        if reference_scores is None:
            reference_scores = collected
        elif collected != reference_scores:
            result.results_identical = False

        result.rows.append(
            AblationRow(
                variant=variant_name,
                columns_expanded=columns,
                nodes_expanded=nodes,
                elapsed_seconds=elapsed,
            )
        )
    return result


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(run().format_table())
