"""Figure 5: accuracy -- additional matches returned by OASIS over BLAST.

OASIS is exact, BLAST is a heuristic, so for the same E-value cutoff OASIS may
return matches BLAST misses (the paper reports about 60% more on average,
varying strongly with query length).  ``run`` executes both engines on the
workload and reports, per query length, the mean percentage of additional
matches; it also verifies the accuracy relationship itself (OASIS must find a
superset of the sequences BLAST scores above the threshold -- any BLAST-only
hit would indicate a scoring inconsistency, and the count of such hits is
reported so the benchmark can assert it is zero).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.common import ExperimentConfig, build_protein_dataset, default_config
from repro.experiments.report import format_table
from repro.workloads.engines import BlastAdapter, OasisAdapter


@dataclass
class Figure5Row:
    query_length: int
    query_count: int
    mean_oasis_matches: float
    mean_blast_matches: float
    mean_additional_percent: float


@dataclass
class Figure5Result:
    config: ExperimentConfig
    rows: List[Figure5Row] = field(default_factory=list)
    #: Sequences reported by BLAST but not by OASIS (must be zero: OASIS is exact).
    blast_only_hits: int = 0
    mean_additional_percent: float = 0.0

    def format_table(self) -> str:
        header = ["query_len", "queries", "oasis_matches", "blast_matches", "additional %"]
        table_rows = [
            [
                row.query_length,
                row.query_count,
                row.mean_oasis_matches,
                row.mean_blast_matches,
                row.mean_additional_percent,
            ]
            for row in self.rows
        ]
        summary = (
            f"mean additional matches: {self.mean_additional_percent:.1f}%   "
            f"BLAST-only hits (must be 0): {self.blast_only_hits}   "
            f"(paper: ~60% additional matches on average)"
        )
        return (
            format_table(header, table_rows, title="Figure 5: additional matches of OASIS over BLAST")
            + "\n"
            + summary
        )


def run(config: Optional[ExperimentConfig] = None) -> Figure5Result:
    """Reproduce Figure 5 on the synthetic dataset."""
    config = config or default_config()
    dataset = build_protein_dataset(config)
    evalue = config.effective_evalue(dataset.database_symbols)

    oasis = OasisAdapter(dataset.engine, evalue=evalue)
    blast = BlastAdapter(
        dataset.database,
        dataset.matrix,
        dataset.gap_model,
        evalue=evalue,
        converter=dataset.converter,
    )

    per_length: Dict[int, List[Dict[str, float]]] = {}
    blast_only = 0
    additional_percentages: List[float] = []

    for query in dataset.workload:
        oasis_result = oasis.run(query.text)
        blast_result = blast.run(query.text)

        oasis_sequences = set(oasis_result.sequence_identifiers())
        blast_sequences = set(blast_result.sequence_identifiers())
        blast_only += len(blast_sequences - oasis_sequences)

        if blast_sequences:
            additional = 100.0 * len(oasis_sequences - blast_sequences) / len(blast_sequences)
        elif oasis_sequences:
            additional = 100.0
        else:
            additional = 0.0
        additional_percentages.append(additional)

        per_length.setdefault(query.length, []).append(
            {
                "oasis": float(len(oasis_sequences)),
                "blast": float(len(blast_sequences)),
                "additional": additional,
            }
        )

    result = Figure5Result(config=config, blast_only_hits=blast_only)
    for length in sorted(per_length):
        samples = per_length[length]
        count = len(samples)
        result.rows.append(
            Figure5Row(
                query_length=length,
                query_count=count,
                mean_oasis_matches=sum(s["oasis"] for s in samples) / count,
                mean_blast_matches=sum(s["blast"] for s in samples) / count,
                mean_additional_percent=sum(s["additional"] for s in samples) / count,
            )
        )
    if additional_percentages:
        result.mean_additional_percent = sum(additional_percentages) / len(additional_percentages)
    return result


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(run().format_table())
