"""OASIS core: the paper's primary contribution.

The public entry point is :class:`repro.core.engine.OasisEngine`, which wraps
index construction and exposes :meth:`~repro.core.engine.OasisEngine.search`
(batch) and :meth:`~repro.core.engine.OasisEngine.search_online` (streaming,
results emitted in decreasing score order).  The lower-level pieces --
heuristic vector, search nodes, column expansion, priority-queue driver -- are
available for inspection and ablation.
"""

from repro.core.results import Alignment, SearchHit, SearchResult, OnlineResultLog
from repro.core.heuristic import compute_heuristic_vector
from repro.core.search_node import NodeState, SearchNode
from repro.core.oasis import OasisSearch, OasisSearchStatistics
from repro.core.engine import OasisEngine
from repro.core.evalue import SelectivityConverter

__all__ = [
    "Alignment",
    "SearchHit",
    "SearchResult",
    "OnlineResultLog",
    "compute_heuristic_vector",
    "NodeState",
    "SearchNode",
    "OasisSearch",
    "OasisSearchStatistics",
    "OasisEngine",
    "SelectivityConverter",
]
