"""Search nodes: the elements of the OASIS priority queue (Section 3).

Each search node corresponds to one suffix-tree node and represents the
partial alignments between the query and the portion of the database spelled
by the path to that tree node.  The fields mirror the paper exactly:

* ``tree_node`` -- the corresponding suffix tree node (``sn`` in the paper);
* ``column`` -- the ``C`` vector: one Smith-Waterman column, ``column[i]``
  holding the best score of an alignment ending at query position ``i`` and at
  the end of the path (pruned entries hold a large negative sentinel);
* ``max_score`` -- the strongest alignment found anywhere along the path;
* ``f`` -- the optimistic bound on what further expansion can achieve (the
  priority-queue key);
* ``b`` -- the best score ending exactly at this node;
* ``state`` -- VIABLE / ACCEPTED / UNVIABLE.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

#: Sentinel used for pruned alignment entries.  Large enough in magnitude to
#: dominate any real score, small enough that adding substitution scores and
#: heuristic bounds cannot overflow int64.
PRUNED = -(10**15)


class NodeState(enum.Enum):
    """The status tags of Section 3 (``viable`` / ``accepted`` / ``unviable``)."""

    VIABLE = "viable"
    ACCEPTED = "accepted"
    UNVIABLE = "unviable"


@dataclass
class SearchNode:
    """One entry of the OASIS priority queue."""

    tree_node: Any
    column: Optional[np.ndarray]
    max_score: int
    f: int
    b: int
    state: NodeState
    #: String depth of the corresponding tree node (how many target symbols
    #: the path spells); useful for reporting and debugging.
    depth: int = 0

    @property
    def is_accepted(self) -> bool:
        return self.state is NodeState.ACCEPTED

    @property
    def is_viable(self) -> bool:
        return self.state is NodeState.VIABLE

    @property
    def is_unviable(self) -> bool:
        return self.state is NodeState.UNVIABLE

    def __repr__(self) -> str:
        return (
            f"SearchNode(state={self.state.value}, f={self.f}, "
            f"max_score={self.max_score}, depth={self.depth})"
        )


def make_terminal_node(tree_node: Any, max_score: int, min_score: int, depth: int) -> SearchNode:
    """A finished node: no further expansion below it can improve the path.

    Both the early-termination check (``f <= max_score``) and the leaf case
    of Algorithm 3 end here: the strongest alignment along the path is
    ``max_score``, so ``f`` and ``b`` collapse to it, the column is
    discarded, and the node is ACCEPTED when the path reached the threshold
    (its sequences are reported when it surfaces from the queue) and
    UNVIABLE otherwise.  Shared by every expansion kernel.
    """
    state = NodeState.ACCEPTED if max_score >= min_score else NodeState.UNVIABLE
    return SearchNode(
        tree_node=tree_node,
        column=None,
        max_score=max_score,
        f=max_score,
        b=max_score,
        state=state,
        depth=depth,
    )


def make_queue_entry(node: SearchNode, counter: int) -> tuple:
    """Build a heap entry for ``heapq`` (a min-heap, hence the negations).

    The entry is a plain tuple ``(-f, accepted-first flag, counter, node)``:
    accepted nodes sort before viable nodes of equal ``f`` so that a result
    that is already provably optimal is emitted before more speculative work
    is done -- this matches the behaviour described in the paper's example
    (Section 3.3) and keeps the online stream as early as possible.  The
    unique counter breaks all remaining ties, so the node itself is never
    compared.
    """
    return (-node.f, 0 if node.is_accepted else 1, counter, node)
