"""Selectivity conversion between E-values and minimum alignment scores.

OASIS controls selectivity through ``min_score`` while BLAST uses an E-value;
Equations 2-3 of the paper relate the two.  :class:`SelectivityConverter`
packages the conversion for one (matrix, database) pair so that experiments
can be specified in terms of the E-values the paper reports (1 .. 20 000) and
translated consistently for every engine.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.scoring.karlin_altschul import (
    KarlinAltschulParameters,
    estimate_karlin_altschul,
)
from repro.scoring.matrix import SubstitutionMatrix
from repro.sequences.database import SequenceDatabase


class SelectivityConverter:
    """Convert between E-values and raw-score thresholds for one database.

    Parameters
    ----------
    matrix:
        The substitution matrix in use.
    database:
        The target database; its size and residue composition determine the
        Karlin-Altschul constants.
    frequencies:
        Optional explicit background frequencies; the database's measured
        residue frequencies are used when omitted.
    effective_database_size:
        Optional override of ``n`` in Equations 2-3.  A search over a *part*
        of a larger collection (one shard of a sharded index, or a manually
        filtered :class:`SequenceDatabase`) must still prune and report
        E-values against the size of the **whole** collection, otherwise the
        same alignment gets a different E-value depending on which sub-database
        happened to contain it.  Defaults to ``database.total_symbols``.
    """

    def __init__(
        self,
        matrix: SubstitutionMatrix,
        database: SequenceDatabase,
        frequencies: Optional[Mapping[str, float]] = None,
        effective_database_size: Optional[int] = None,
    ):
        if effective_database_size is not None and effective_database_size < 1:
            raise ValueError("effective_database_size must be at least 1")
        self.matrix = matrix
        self.database = database
        self.effective_database_size = effective_database_size
        background = frequencies if frequencies is not None else database.residue_frequencies()
        # Fall back to uniform frequencies for degenerate databases (e.g. a
        # single-symbol test database) where the measured composition gives a
        # non-negative expected score.
        try:
            self.parameters: KarlinAltschulParameters = estimate_karlin_altschul(
                matrix, frequencies=background
            )
        except ValueError:
            self.parameters = estimate_karlin_altschul(matrix)

    @property
    def database_size(self) -> int:
        """``n`` in Equations 2-3: total residues in the (effective) database."""
        if self.effective_database_size is not None:
            return self.effective_database_size
        return self.database.total_symbols

    def min_score_for_evalue(self, evalue: float, query_length: int) -> int:
        """Equation 3: the score threshold equivalent to an E-value cutoff."""
        return self.parameters.min_score(evalue, query_length, self.database_size)

    def evalue_for_score(self, score: float, query_length: int) -> float:
        """Equation 2: the E-value of a raw alignment score."""
        return self.parameters.evalue(score, query_length, self.database_size)

    def bit_score(self, score: float) -> float:
        """Normalised bit score of a raw score."""
        return self.parameters.bit_score(score)

    def __repr__(self) -> str:
        effective = (
            f", effective_n={self.effective_database_size}"
            if self.effective_database_size is not None
            else ""
        )
        return (
            f"SelectivityConverter(matrix={self.matrix.name!r}, "
            f"database={self.database.name!r}, lambda={self.parameters.lambda_:.4f}, "
            f"K={self.parameters.k:.4f}{effective})"
        )
