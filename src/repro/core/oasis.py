"""The OASIS search driver: Algorithms 1 and 2 of the paper.

:class:`OasisSearch` runs a best-first (A*) search over a suffix tree cursor.
The priority queue is ordered by the optimistic bound ``f``; a node is only
expanded when no other frontier node could produce a stronger alignment, so
whenever an ACCEPTED node reaches the head of the queue its alignment score is
provably the best still-unreported score anywhere in the database -- which is
what lets OASIS emit results online, in decreasing score order, without ever
missing an alignment above the threshold.

Results follow the paper's reporting convention: the single strongest
alignment per database sequence, for every sequence whose best score reaches
``min_score``.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set

import numpy as np

from repro.core.expand import ExpansionContext, expand_arc
from repro.core.heuristic import compute_heuristic_vector
from repro.core.results import Alignment, OnlineResultLog, SearchHit, SearchResult
from repro.core.search_node import NodeState, SearchNode, make_queue_entry
from repro.scoring.gaps import FixedGapModel, GapModel
from repro.scoring.karlin_altschul import KarlinAltschulParameters
from repro.scoring.matrix import SubstitutionMatrix
from repro.sequences.sequence import Sequence
from repro.suffixtree.cursor import SuffixTreeCursor


@dataclass
class OasisSearchStatistics:
    """Work counters for one query (the quantities behind Figures 4 and 6)."""

    columns_expanded: int = 0
    nodes_expanded: int = 0
    nodes_enqueued: int = 0
    nodes_accepted: int = 0
    nodes_pruned: int = 0
    max_queue_size: int = 0
    pruned_non_positive: int = 0
    pruned_dominated: int = 0
    pruned_threshold: int = 0
    elapsed_seconds: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "columns_expanded": self.columns_expanded,
            "nodes_expanded": self.nodes_expanded,
            "nodes_enqueued": self.nodes_enqueued,
            "nodes_accepted": self.nodes_accepted,
            "nodes_pruned": self.nodes_pruned,
            "max_queue_size": self.max_queue_size,
            "pruned_non_positive": self.pruned_non_positive,
            "pruned_dominated": self.pruned_dominated,
            "pruned_threshold": self.pruned_threshold,
            "elapsed_seconds": self.elapsed_seconds,
        }


@dataclass
class _EmittedHit:
    """Internal carrier pairing a hit with the emission timestamp."""

    hit: SearchHit
    elapsed: float


class OasisSearch:
    """Best-first local-alignment search over a suffix tree.

    Parameters
    ----------
    cursor:
        Any :class:`~repro.suffixtree.cursor.SuffixTreeCursor` (in-memory or
        disk-resident).
    matrix:
        Substitution matrix.
    gap_model:
        Gap model; the search implements the paper's fixed (linear) gap model.
    """

    def __init__(
        self,
        cursor: SuffixTreeCursor,
        matrix: SubstitutionMatrix,
        gap_model: GapModel = FixedGapModel(-1),
        prune_non_positive: bool = True,
        prune_dominated: bool = True,
        prune_threshold: bool = True,
        track_pruning: bool = False,
    ):
        gap_model.validate()
        if gap_model.is_affine:
            raise NotImplementedError(
                "OASIS currently implements the paper's fixed gap model; "
                "affine gaps are listed as future work (Section 6)"
            )
        self.cursor = cursor
        self.matrix = matrix
        self.gap_model = gap_model
        # Pruning-rule switches: disabling a rule never changes the result
        # set, only the amount of work (the ablation benchmark relies on this).
        self.prune_non_positive = prune_non_positive
        self.prune_dominated = prune_dominated
        self.prune_threshold = prune_threshold
        self.track_pruning = track_pruning
        self.statistics = OasisSearchStatistics()

    # ------------------------------------------------------------------ #
    # Streaming (online) interface
    # ------------------------------------------------------------------ #
    def run(
        self,
        query: str,
        min_score: int,
        max_results: Optional[int] = None,
        compute_alignments: bool = False,
        statistics_model: Optional[KarlinAltschulParameters] = None,
    ) -> Iterator[SearchHit]:
        """Yield hits online, strongest first (Algorithm 1).

        The generator can be abandoned at any point ("abort the query after
        seeing the top few matches"); all work stops as soon as the consumer
        stops iterating.
        """
        database = self.cursor.database
        query_sequence = Sequence(query, database.alphabet)
        query_codes = query_sequence.codes
        if len(query_codes) == 0:
            raise ValueError("the query must not be empty")

        start_time = time.perf_counter()
        self.statistics = OasisSearchStatistics()

        heuristic = compute_heuristic_vector(query_codes, self.matrix)
        context = ExpansionContext(
            query_codes=query_codes,
            score_lookup=self.matrix.lookup,
            gap_penalty=self.gap_model.per_symbol,
            heuristic=heuristic,
            min_score=min_score,
            prune_non_positive=self.prune_non_positive,
            prune_dominated=self.prune_dominated,
            prune_threshold=self.prune_threshold,
            track_pruning=self.track_pruning,
        )

        # Algorithm 2: seed the queue with the root of the suffix tree.
        root_column = context.make_root_column()
        root_bound = int(heuristic.max())
        root_node = SearchNode(
            tree_node=self.cursor.root,
            column=root_column,
            max_score=0,
            f=root_bound,
            b=0,
            state=NodeState.VIABLE if root_bound >= min_score else NodeState.UNVIABLE,
            depth=0,
        )
        if root_node.is_unviable:
            # Even a perfect match cannot reach the threshold.
            self.statistics.elapsed_seconds = time.perf_counter() - start_time
            return

        counter = 0
        queue = [make_queue_entry(root_node, counter)]
        reported: Set[int] = set()
        emitted = 0
        sequence_count = len(database)

        while queue:
            if len(queue) > self.statistics.max_queue_size:
                self.statistics.max_queue_size = len(queue)
            node = heapq.heappop(queue)[-1]

            if node.is_accepted:
                self.statistics.nodes_accepted += 1
                for sequence_index in self.cursor.sequences_below(node.tree_node):
                    if sequence_index in reported:
                        continue
                    reported.add(sequence_index)
                    record = database[sequence_index]
                    alignment: Optional[Alignment] = None
                    if compute_alignments:
                        alignment = self._trace_alignment(query_sequence.text, record.text)
                    evalue = None
                    if statistics_model is not None:
                        evalue = statistics_model.evalue(
                            node.max_score, len(query_codes), database.total_symbols
                        )
                    hit = SearchHit(
                        sequence_index=sequence_index,
                        sequence_identifier=record.identifier,
                        score=node.max_score,
                        evalue=evalue,
                        alignment=alignment,
                        emitted_at=time.perf_counter() - start_time,
                    )
                    emitted += 1
                    yield hit
                    if max_results is not None and emitted >= max_results:
                        self._finish(context, start_time)
                        return
                if len(reported) >= sequence_count:
                    # Every database sequence already has its strongest
                    # alignment reported; nothing left to find.
                    break
                continue

            # VIABLE node: expand all children of the corresponding tree node.
            self.statistics.nodes_expanded += 1
            for child in self.cursor.children(node.tree_node):
                arc = self.cursor.arc_symbols(child)
                child_node = expand_arc(
                    parent=node,
                    tree_node=child,
                    arc_symbols=arc,
                    is_leaf=self.cursor.is_leaf(child),
                    context=context,
                )
                if child_node.is_unviable:
                    self.statistics.nodes_pruned += 1
                    continue
                counter += 1
                self.statistics.nodes_enqueued += 1
                heapq.heappush(queue, make_queue_entry(child_node, counter))

        self._finish(context, start_time)

    def _finish(self, context: ExpansionContext, start_time: float) -> None:
        self.statistics.columns_expanded = context.columns_expanded
        self.statistics.pruned_non_positive = context.pruned_non_positive
        self.statistics.pruned_dominated = context.pruned_dominated
        self.statistics.pruned_threshold = context.pruned_threshold
        self.statistics.elapsed_seconds = time.perf_counter() - start_time

    # ------------------------------------------------------------------ #
    # Batch interface
    # ------------------------------------------------------------------ #
    def search(
        self,
        query: str,
        min_score: int,
        max_results: Optional[int] = None,
        compute_alignments: bool = False,
        statistics_model: Optional[KarlinAltschulParameters] = None,
    ) -> SearchResult:
        """Run the full search and collect the hits into a SearchResult."""
        start_time = time.perf_counter()
        online_log = OnlineResultLog()
        hits: List[SearchHit] = []
        for hit in self.run(
            query,
            min_score,
            max_results=max_results,
            compute_alignments=compute_alignments,
            statistics_model=statistics_model,
        ):
            hits.append(hit)
            online_log.record(hit.emitted_at if hit.emitted_at is not None else 0.0)
        elapsed = time.perf_counter() - start_time

        result = SearchResult(
            query=query.upper(),
            engine="oasis",
            hits=hits,
            elapsed_seconds=elapsed,
            columns_expanded=self.statistics.columns_expanded,
            parameters={
                "min_score": min_score,
                "matrix": self.matrix.name,
                "gap": self.gap_model.per_symbol,
                "max_results": max_results,
            },
        )
        result.parameters["online_log"] = online_log
        result.parameters["statistics"] = self.statistics.as_dict()
        return result

    # ------------------------------------------------------------------ #
    # Alignment reconstruction
    # ------------------------------------------------------------------ #
    def _trace_alignment(self, query_text: str, target_text: str) -> Alignment:
        """Recover the concrete best alignment for a reported sequence.

        The search itself only tracks scores (storing full tracebacks for
        every frontier column would defeat the memory frugality of keeping a
        single column per node), so the operations are recovered with a
        pairwise Smith-Waterman pass against the reported sequence -- the same
        convention the paper uses when it "duplicates the behaviour of S-W".
        """
        from repro.baselines.smith_waterman import SmithWatermanAligner

        aligner = SmithWatermanAligner(self.matrix, self.gap_model)
        return aligner.align_pair(query_text, target_text)
