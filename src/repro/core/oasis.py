"""The OASIS search driver: Algorithms 1 and 2 of the paper.

:class:`QueryExecution` runs a best-first (A*) search over a suffix tree
cursor.  The priority queue is ordered by the optimistic bound ``f``; a node
is only expanded when no other frontier node could produce a stronger
alignment, so whenever an ACCEPTED node reaches the head of the queue its
alignment score is provably the best still-unreported score anywhere in the
database -- which is what lets OASIS emit results online, in decreasing score
order, without ever missing an alignment above the threshold.

Each execution is a *self-contained* object owning its own priority queue,
:class:`~repro.core.expand.ExpansionContext`, statistics and timing, so any
number of executions can run concurrently (interleaved generators on one
thread, or threads of a batch executor) over the same shared read-only
cursor.  :class:`OasisSearch` is the per-configuration factory: ``run`` and
``search`` are thin wrappers that create one execution per call.

Results follow the paper's reporting convention: the single strongest
alignment per database sequence, for every sequence whose best score reaches
``min_score``.
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Union

from repro.core.expand import ExpansionContext
from repro.core.heuristic import compute_heuristic_vector
from repro.core.kernels import ExpansionKernel, get_kernel
from repro.core.results import (
    Alignment,
    OnlineResultLog,
    SearchHit,
    SearchResult,
    hit_order_key,
)
from repro.core.search_node import NodeState, SearchNode, make_queue_entry
from repro.scoring.gaps import FixedGapModel, GapModel
from repro.scoring.karlin_altschul import KarlinAltschulParameters
from repro.scoring.matrix import SubstitutionMatrix
from repro.sequences.sequence import Sequence
from repro.suffixtree.cursor import SuffixTreeCursor


@dataclass
class OasisSearchStatistics:
    """Work counters for one query (the quantities behind Figures 4 and 6).

    The ``buffer_*`` counters are the buffer-pool activity observed while
    this query ran (hits/misses/evictions delta over the cursor's pool);
    zero for in-memory cursors.  A shared pool serving concurrent queries
    attributes overlapping activity to every query that was in flight, so
    under concurrency they are an upper bound per query -- exact in the
    serial and process-scatter regimes, where one query owns the pool.
    """

    columns_expanded: int = 0
    nodes_expanded: int = 0
    nodes_enqueued: int = 0
    nodes_accepted: int = 0
    nodes_pruned: int = 0
    max_queue_size: int = 0
    pruned_non_positive: int = 0
    pruned_dominated: int = 0
    pruned_threshold: int = 0
    elapsed_seconds: float = 0.0
    buffer_hits: int = 0
    buffer_misses: int = 0
    buffer_evictions: int = 0
    #: Which expansion kernel ran the DP (``scalar``/``batched``/``reference``)
    #: -- every kernel is parity-gated, so this never changes the hits, only
    #: how the work counters were spent.
    kernel: str = "scalar"

    def as_dict(self) -> Dict[str, object]:
        return {
            "columns_expanded": self.columns_expanded,
            "nodes_expanded": self.nodes_expanded,
            "nodes_enqueued": self.nodes_enqueued,
            "nodes_accepted": self.nodes_accepted,
            "nodes_pruned": self.nodes_pruned,
            "max_queue_size": self.max_queue_size,
            "pruned_non_positive": self.pruned_non_positive,
            "pruned_dominated": self.pruned_dominated,
            "pruned_threshold": self.pruned_threshold,
            "elapsed_seconds": self.elapsed_seconds,
            "buffer_hits": self.buffer_hits,
            "buffer_misses": self.buffer_misses,
            "buffer_evictions": self.buffer_evictions,
            "kernel": self.kernel,
        }


class QueryExecution:
    """One self-contained, reentrant run of Algorithms 1/2 for a single query.

    The execution owns everything mutable about a search -- the priority
    queue, the :class:`ExpansionContext`, the statistics and the timing -- so
    concurrent executions over the same cursor never observe each other.  It
    is both iterable (streaming hits, strongest first) and collectable
    (:meth:`result`); the iterator can be abandoned at any point and
    :attr:`statistics` still reports the work actually done, because the
    bookkeeping runs in a ``finally`` block when the generator is closed.

    Cooperative interruption:

    ``time_budget``
        Optional wall-clock budget in seconds; once exceeded, the execution
        stops emitting and marks itself :attr:`timed_out`.  Hits already
        emitted stand (they are still correct and complete down to the score
        reached).
    ``cancel_event``
        Optional :class:`threading.Event` shared with a batch executor; when
        set, the execution stops at the next queue pop.
    ``abort()``
        Per-execution flag with the same effect as the cancel event.

    Telemetry (all optional, all off by default):

    ``tracer``
        A :class:`~repro.obs.Tracer`.  The whole run is wrapped in one span
        (named :attr:`trace_name`, parented under :attr:`trace_parent` when a
        coordinator such as the sharded engine sets one) whose attributes
        carry the final work counters, and the search metrics (nodes
        expanded, DP cells, pruning cutoffs, query latency) are recorded
        into ``tracer.metrics`` when the execution finishes.  ``None`` costs
        a single identity check per query -- nothing in the per-node loop.
    """

    def __init__(
        self,
        search: "OasisSearch",
        query: str,
        min_score: int,
        max_results: Optional[int] = None,
        compute_alignments: bool = False,
        statistics_model: Optional[KarlinAltschulParameters] = None,
        database_size: Optional[int] = None,
        time_budget: Optional[float] = None,
        cancel_event: Optional[threading.Event] = None,
        tracer=None,
    ):
        if time_budget is not None and time_budget <= 0:
            raise ValueError("time_budget must be positive")
        database = search.cursor.database
        self.query_sequence = Sequence(query, database.alphabet)
        if len(self.query_sequence.codes) == 0:
            raise ValueError("the query must not be empty")

        self.search = search
        self.query = query
        self.min_score = int(min_score)
        self.max_results = max_results
        self.compute_alignments = compute_alignments
        self.statistics_model = statistics_model
        #: ``n`` of Equation 2 used to annotate E-values.  Defaults to the
        #: cursor's own database; a sharded engine passes the *global* size so
        #: a hit gets the same E-value regardless of which shard held it.
        self.database_size = (
            int(database_size) if database_size is not None else database.total_symbols
        )
        self.time_budget = time_budget
        self.statistics = OasisSearchStatistics(kernel=search.kernel.name)
        self.timed_out = False
        self.aborted = False

        #: Telemetry: the span name/parent/attributes are plain fields so a
        #: coordinator (sharded engine, batch executor, process worker) can
        #: re-label its shard executions before iteration starts.
        self.tracer = tracer
        self.trace_name = "query"
        self.trace_parent: Optional[str] = None
        #: ``phase`` feeds the per-phase breakdown in ``repro.obs.analyze``:
        #: a standalone execution is pure DP expansion; coordinators relabel.
        self.trace_attributes: Dict[str, object] = {"phase": "expand"}
        self._pool_start: Optional[tuple] = None

        self._cancel_event = cancel_event
        self._abort_requested = False
        self._deadline: Optional[float] = None
        self._start_time: Optional[float] = None
        self._hits: List[SearchHit] = []
        self._online_log = OnlineResultLog()
        self._iterator: Optional[Iterator[SearchHit]] = None

        self.heuristic = compute_heuristic_vector(self.query_sequence.codes, search.matrix)
        self.context = ExpansionContext(
            query_codes=self.query_sequence.codes,
            score_lookup=search.matrix.lookup,
            gap_penalty=search.gap_model.per_symbol,
            heuristic=self.heuristic,
            min_score=self.min_score,
            prune_non_positive=search.prune_non_positive,
            prune_dominated=search.prune_dominated,
            prune_threshold=search.prune_threshold,
            track_pruning=search.track_pruning,
        )

    # ------------------------------------------------------------------ #
    # Cooperative interruption
    # ------------------------------------------------------------------ #
    def abort(self) -> None:
        """Ask the execution to stop at the next queue pop (thread-safe)."""
        self._abort_requested = True

    @property
    def hit_count(self) -> int:
        """Number of hits emitted so far."""
        return len(self._hits)

    def set_deadline(self, deadline: Optional[float]) -> None:
        """Pin an absolute deadline (``time.perf_counter`` timebase).

        ``time_budget`` is relative to when the execution *starts running*,
        which over-grants time to executions that wait in a pool queue.  A
        coordinator fanning one query across several executions (the sharded
        engine) pins one shared absolute deadline instead, so the query's
        budget covers queueing and all shards together.  Must be called
        before iteration starts; overrides ``time_budget``.
        """
        self._deadline = deadline

    def _should_stop(self) -> bool:
        if self._abort_requested or (
            self._cancel_event is not None and self._cancel_event.is_set()
        ):
            self.aborted = True
            return True
        if self._deadline is not None and time.perf_counter() >= self._deadline:
            if not self.timed_out:
                self.timed_out = True
                # First crossing only: one flight event per expired deadline.
                tracer = self.tracer
                if tracer is not None and tracer.flight is not None:
                    tracer.flight.event(
                        "deadline_expired",
                        query=self.query[:32],
                        hits=len(self._hits),
                        nodes_expanded=self.statistics.nodes_expanded,
                    )
            return True
        return False

    # ------------------------------------------------------------------ #
    # Streaming (online) interface
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[SearchHit]:
        if self._iterator is None:
            self._iterator = self._generate()
        return self._iterator

    def __next__(self) -> SearchHit:
        return next(iter(self))

    def close(self) -> None:
        """Abandon the stream early (statistics still reflect the work done)."""
        if self._iterator is not None:
            self._iterator.close()

    def _generate(self) -> Iterator[SearchHit]:
        """Yield hits online, strongest first (Algorithm 1).

        The generator can be abandoned at any point ("abort the query after
        seeing the top few matches"); all work stops as soon as the consumer
        stops iterating, and ``finally`` guarantees the statistics are
        finalised even then.
        """
        cursor = self.search.cursor
        database = cursor.database
        context = self.context
        kernel = self.search.kernel
        statistics = self.statistics
        min_score = self.min_score
        query_codes = self.query_sequence.codes

        start_time = time.perf_counter()
        self._start_time = start_time
        if self._deadline is None and self.time_budget is not None:
            self._deadline = start_time + self.time_budget

        span = None
        tracer = self.tracer
        if tracer is not None:
            if self.trace_parent is not None:
                span = tracer.span(
                    self.trace_name,
                    parent_id=self.trace_parent,
                    **self.trace_attributes,
                )
            else:
                span = tracer.span(self.trace_name, **self.trace_attributes)
            span.set_attribute("query_length", len(query_codes))
            span.set_attribute("min_score", min_score)
            tracer._push(span)
        pool = getattr(cursor, "pool", None)
        if pool is not None:
            pool_stats = pool.statistics
            self._pool_start = (pool_stats.hits, pool_stats.misses, pool_stats.evictions)

        try:
            # Algorithm 2: seed the queue with the root of the suffix tree.
            root_column = context.make_root_column()
            root_bound = int(self.heuristic.max())
            root_node = SearchNode(
                tree_node=cursor.root,
                column=root_column,
                max_score=0,
                f=root_bound,
                b=0,
                state=NodeState.VIABLE if root_bound >= min_score else NodeState.UNVIABLE,
                depth=0,
            )
            if root_node.is_unviable:
                # Even a perfect match cannot reach the threshold.
                return

            counter = 0
            queue = [make_queue_entry(root_node, counter)]
            reported: Set[int] = set()
            emitted = 0
            sequence_count = len(database)
            # Hits whose score is proven optimal but whose *rank among equal
            # scores* is not yet: they are held back until the frontier bound
            # drops below their score, then emitted in canonical order.  This
            # keeps the stream online (a hit waits only for its own score
            # level to finish) while making the emission order deterministic
            # and identical to the canonically sorted batch result.
            pending: List[SearchHit] = []

            def drain() -> Iterator[SearchHit]:
                nonlocal emitted
                run = sorted(pending, key=hit_order_key)
                pending.clear()
                for hit in run:
                    hit.emitted_at = time.perf_counter() - start_time
                    emitted += 1
                    self._hits.append(hit)
                    self._online_log.record(hit.emitted_at)
                    yield hit
                    if self.max_results is not None and emitted >= self.max_results:
                        return

            def budget_spent() -> bool:
                return self.max_results is not None and emitted >= self.max_results

            while queue:
                if self._should_stop():
                    # Stopping is cooperative, but the buffered hits are
                    # already proven optimal -- hand them over first.
                    yield from drain()
                    return
                if len(queue) > statistics.max_queue_size:
                    statistics.max_queue_size = len(queue)
                node = heapq.heappop(queue)[-1]

                if pending and node.f < pending[0].score:
                    # The frontier can no longer produce a hit at the buffered
                    # score: the equal-score run is complete, emit it.
                    yield from drain()
                    if budget_spent():
                        return

                if node.is_accepted:
                    statistics.nodes_accepted += 1
                    for sequence_index in cursor.sequences_below(node.tree_node):
                        if sequence_index in reported:
                            continue
                        reported.add(sequence_index)
                        record = database[sequence_index]
                        alignment: Optional[Alignment] = None
                        if self.compute_alignments:
                            alignment = self.search._trace_alignment(
                                self.query_sequence.text, record.text
                            )
                        evalue = None
                        if self.statistics_model is not None:
                            evalue = self.statistics_model.evalue(
                                node.max_score, len(query_codes), self.database_size
                            )
                        pending.append(
                            SearchHit(
                                sequence_index=sequence_index,
                                sequence_identifier=record.identifier,
                                score=node.max_score,
                                evalue=evalue,
                                alignment=alignment,
                            )
                        )
                    if len(reported) >= sequence_count:
                        # Every database sequence already has its strongest
                        # alignment reported; nothing left to find.
                        break
                    continue

                # VIABLE node: hand the whole sibling set to the expansion
                # kernel at once (a batching kernel vectorises across it; the
                # scalar kernels consume the generator child by child, which
                # preserves the interleaved cursor access pattern).  Kernels
                # return one child node per sibling, in child order -- the
                # enqueue counter, and with it the heap tie-break, depends
                # on that.
                statistics.nodes_expanded += 1
                siblings = (
                    (child, cursor.arc_symbols(child), cursor.is_leaf(child))
                    for child in cursor.children(node.tree_node)
                )
                for child_node in kernel.expand_children(node, siblings, context):
                    if child_node.is_unviable:
                        statistics.nodes_pruned += 1
                        continue
                    counter += 1
                    statistics.nodes_enqueued += 1
                    heapq.heappush(queue, make_queue_entry(child_node, counter))

            # Exhausted queue or full coverage: whatever is buffered is final.
            yield from drain()
        except Exception as error:
            if span is not None:
                span.status = "error"
                span.attributes.setdefault("error", f"{type(error).__name__}: {error}")
            raise
        finally:
            # Runs on normal exhaustion, early return, GeneratorExit (an
            # abandoned generator) and errors alike, so an aborted consumer
            # still sees correct elapsed/columns counters.
            self._finish()
            if span is not None:
                self._close_span(span)

    def _finish(self) -> None:
        context = self.context
        statistics = self.statistics
        statistics.columns_expanded = context.columns_expanded
        statistics.pruned_non_positive = context.pruned_non_positive
        statistics.pruned_dominated = context.pruned_dominated
        statistics.pruned_threshold = context.pruned_threshold
        if self._start_time is not None:
            statistics.elapsed_seconds = time.perf_counter() - self._start_time
        if self._pool_start is not None:
            pool_stats = self.search.cursor.pool.statistics  # type: ignore[attr-defined]
            start_hits, start_misses, start_evictions = self._pool_start
            statistics.buffer_hits = pool_stats.hits - start_hits
            statistics.buffer_misses = pool_stats.misses - start_misses
            statistics.buffer_evictions = pool_stats.evictions - start_evictions
            self._pool_start = None

    def _close_span(self, span) -> None:
        """Stamp final counters on the query span and record the metrics."""
        tracer = self.tracer
        if tracer is None:
            # A live span implies a tracer (only _generate opens spans), but
            # the hot-path telemetry contract is lexical: every tracer/metrics
            # call sits behind an explicit None check.
            return
        statistics = self.statistics
        span.set_attribute("hits", len(self._hits))
        span.set_attribute("nodes_expanded", statistics.nodes_expanded)
        span.set_attribute("columns_expanded", statistics.columns_expanded)
        if statistics.buffer_misses or statistics.buffer_hits:
            span.set_attribute("buffer_hits", statistics.buffer_hits)
            span.set_attribute("buffer_misses", statistics.buffer_misses)
        if self.timed_out:
            span.set_attribute("timed_out", True)
        if self.aborted:
            span.set_attribute("aborted", True)
        tracer._pop(span)
        span.finish()
        metrics = tracer.metrics
        metrics.counter("search.queries", "queries executed").inc()
        metrics.counter("search.hits", "hits emitted").inc(len(self._hits))
        metrics.counter("search.nodes_expanded", "suffix-tree nodes expanded").inc(
            statistics.nodes_expanded
        )
        metrics.counter("search.columns_expanded", "DP columns computed").inc(
            statistics.columns_expanded
        )
        # One DP column holds query_length + 1 cells.
        metrics.counter("search.dp_cells", "DP cells computed").inc(
            statistics.columns_expanded * (len(self.query_sequence.codes) + 1)
        )
        metrics.counter(
            "search.pruning_cutoffs", "frontier nodes cut by the pruning rules"
        ).inc(statistics.nodes_pruned)
        metrics.gauge("search.queue_peak", "peak priority-queue size").set(
            max(
                metrics.gauge("search.queue_peak").value,
                statistics.max_queue_size,
            )
        )
        metrics.histogram("search.seconds", description="per-query latency").observe(
            statistics.elapsed_seconds
        )
        if self.timed_out:
            metrics.counter("search.timeouts", "queries that hit their budget").inc()
        if self.aborted:
            metrics.counter("search.aborts", "queries stopped by abort/cancel").inc()

    # ------------------------------------------------------------------ #
    # Batch interface
    # ------------------------------------------------------------------ #
    def result(self) -> SearchResult:
        """Drain the stream and collect everything into a SearchResult.

        Hits are put in the canonical order (decreasing score, ties by
        ``(sequence_identifier, alignment start)``): the online stream's
        emission order already decreases in score, so this only pins down
        equal-score runs -- and makes the collected result of any engine
        (serial, batched, sharded) byte-for-byte comparable.
        """
        for _ in self:
            pass
        result = SearchResult(
            query=self.query.upper(),
            engine="oasis",
            hits=sorted(self._hits, key=hit_order_key),
            elapsed_seconds=self.statistics.elapsed_seconds,
            columns_expanded=self.statistics.columns_expanded,
            parameters={
                "min_score": self.min_score,
                "matrix": self.search.matrix.name,
                "gap": self.search.gap_model.per_symbol,
                "max_results": self.max_results,
            },
            statistics=self.statistics,
        )
        result.parameters["online_log"] = self._online_log
        if self.timed_out:
            result.parameters["timed_out"] = True
        if self.aborted:
            result.parameters["aborted"] = True
        return result

    def __repr__(self) -> str:
        return (
            f"QueryExecution(query={self.query!r}, min_score={self.min_score}, "
            f"emitted={len(self._hits)})"
        )


class OasisSearch:
    """Best-first local-alignment search over a suffix tree.

    Holds the per-database configuration (cursor, scoring, pruning switches)
    and creates one :class:`QueryExecution` per query.  The object itself is
    immutable during searching, so one ``OasisSearch`` can serve any number of
    concurrent executions.

    Parameters
    ----------
    cursor:
        Any :class:`~repro.suffixtree.cursor.SuffixTreeCursor` (in-memory or
        disk-resident).
    matrix:
        Substitution matrix.
    gap_model:
        Gap model; the search implements the paper's fixed (linear) gap model.
    kernel:
        Expansion-kernel selection: a registered name (``scalar`` /
        ``batched`` / ``reference``), an :class:`ExpansionKernel` instance,
        or ``None`` to fall back to the ``OASIS_KERNEL`` environment
        variable and then the default.  Kernels are parity-gated -- the
        choice changes speed, never results.
    """

    def __init__(
        self,
        cursor: SuffixTreeCursor,
        matrix: SubstitutionMatrix,
        gap_model: GapModel = FixedGapModel(-1),
        prune_non_positive: bool = True,
        prune_dominated: bool = True,
        prune_threshold: bool = True,
        track_pruning: bool = False,
        kernel: Union[str, ExpansionKernel, None] = None,
    ):
        gap_model.validate()
        if gap_model.is_affine:
            raise NotImplementedError(
                "OASIS currently implements the paper's fixed gap model; "
                "affine gaps are listed as future work (Section 6)"
            )
        self.cursor = cursor
        self.matrix = matrix
        self.gap_model = gap_model
        # Pruning-rule switches: disabling a rule never changes the result
        # set, only the amount of work (the ablation benchmark relies on this).
        self.prune_non_positive = prune_non_positive
        self.prune_dominated = prune_dominated
        self.prune_threshold = prune_threshold
        self.track_pruning = track_pruning
        self.kernel: ExpansionKernel = get_kernel(kernel)
        #: Statistics of the most recently *created* execution.  Kept for
        #: backward compatibility with serial callers; concurrent callers
        #: should read ``execution.statistics`` / ``result.statistics``.
        self.statistics = OasisSearchStatistics()

    # ------------------------------------------------------------------ #
    # Execution factory
    # ------------------------------------------------------------------ #
    def execute(
        self,
        query: str,
        min_score: int,
        max_results: Optional[int] = None,
        compute_alignments: bool = False,
        statistics_model: Optional[KarlinAltschulParameters] = None,
        database_size: Optional[int] = None,
        time_budget: Optional[float] = None,
        cancel_event: Optional[threading.Event] = None,
        tracer=None,
    ) -> QueryExecution:
        """Create a self-contained execution for one query."""
        execution = QueryExecution(
            self,
            query,
            min_score=min_score,
            max_results=max_results,
            compute_alignments=compute_alignments,
            statistics_model=statistics_model,
            database_size=database_size,
            time_budget=time_budget,
            cancel_event=cancel_event,
            tracer=tracer,
        )
        self.statistics = execution.statistics
        return execution

    # ------------------------------------------------------------------ #
    # Streaming (online) interface
    # ------------------------------------------------------------------ #
    def run(
        self,
        query: str,
        min_score: int,
        max_results: Optional[int] = None,
        compute_alignments: bool = False,
        statistics_model: Optional[KarlinAltschulParameters] = None,
    ) -> Iterator[SearchHit]:
        """Yield hits online, strongest first (Algorithm 1)."""
        return iter(
            self.execute(
                query,
                min_score=min_score,
                max_results=max_results,
                compute_alignments=compute_alignments,
                statistics_model=statistics_model,
            )
        )

    # ------------------------------------------------------------------ #
    # Batch interface
    # ------------------------------------------------------------------ #
    def search(
        self,
        query: str,
        min_score: int,
        max_results: Optional[int] = None,
        compute_alignments: bool = False,
        statistics_model: Optional[KarlinAltschulParameters] = None,
    ) -> SearchResult:
        """Run the full search and collect the hits into a SearchResult."""
        return self.execute(
            query,
            min_score=min_score,
            max_results=max_results,
            compute_alignments=compute_alignments,
            statistics_model=statistics_model,
        ).result()

    # ------------------------------------------------------------------ #
    # Alignment reconstruction
    # ------------------------------------------------------------------ #
    def _trace_alignment(self, query_text: str, target_text: str) -> Alignment:
        """Recover the concrete best alignment for a reported sequence.

        The search itself only tracks scores (storing full tracebacks for
        every frontier column would defeat the memory frugality of keeping a
        single column per node), so the operations are recovered with a
        pairwise Smith-Waterman pass against the reported sequence -- the same
        convention the paper uses when it "duplicates the behaviour of S-W".
        """
        from repro.baselines.smith_waterman import SmithWatermanAligner

        aligner = SmithWatermanAligner(self.matrix, self.gap_model)
        return aligner.align_pair(query_text, target_text)
