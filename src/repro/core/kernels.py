"""Arc-expansion kernels: the DP hot path, batched and allocation-free.

``core/expand.py``'s per-arc dynamic program is the single hottest loop in
every search (``BENCH_profile_expand.json`` put it at ~60% of serial
own-time), and most of that cost is interpreter dispatch around tiny NumPy
calls: a fresh candidate array per column, two full reductions over the same
data, mask writes into arrays that are about to be discarded.  This module
rebuilds the hot path as pluggable *kernels* that share one contract:

:class:`ScalarKernel` (the default)
    The reference algorithm over preallocated per-query scratch arrays (the
    :class:`~repro.core.expand.ExpansionContext` owns them): ``out=`` ufunc
    forms throughout, ping-pong column buffers so a parent's column is never
    mutated, and -- on the all-rules fast path -- a *fused-limit* prune mask:
    the three rules ``new <= 0``, ``new + h <= max_score`` and
    ``new + h < min_score`` are, elementwise, exactly
    ``new <= max(0, cutoff - h)`` with ``cutoff = max(max_score,
    min_score - 1)``, so one comparison against a cached limit vector
    (recomputed only when the path's ``max_score`` rises) replaces the
    per-column bound array and both of its comparisons.  The
    early-termination test likewise collapses to "did every cell prune?",
    because any survivor has ``bound > cutoff >= max_score`` and
    ``bound >= min_score``, so neither termination branch can fire -- the
    reference path's second full ``optimistic.max()`` reduction disappears.

:class:`BatchedKernel`
    Sibling-batched expansion: a node's children all start with distinct arc
    symbols, so when a VIABLE node is expanded the first DP column of *every*
    child arc is computed as one 2-D vectorised update (one ufunc fan
    replaces the per-child fan of calls).  Most arcs die within their first
    column, so the common case finishes inside the batch; survivors fall
    through to the scalar kernel for the rest of their arc.

:class:`ReferenceKernel`
    The original implementation, verbatim
    (:func:`~repro.core.expand.expand_arc_reference`).  Slowest; exists so
    parity is checkable against unmodified code forever.

Every kernel is parity-gated: byte-identical hits, node states and
``columns_expanded``/per-rule pruning counters versus the reference path
(``tests/test_kernel_parity.py``, plus the engine parity suites under
``OASIS_KERNEL=batched`` in CI).

Kernel selection goes through :func:`get_kernel`: an explicit ``kernel=``
argument (``OasisSearch`` / the engines / the CLI all thread one through)
wins, otherwise the ``OASIS_KERNEL`` environment variable, otherwise
``scalar``.

Purity contract: kernels never allocate arrays and never touch
tracer/metrics inside their column loops -- scratch comes from the
:class:`~repro.core.expand.ExpansionContext` -- enforced by the
``kernel-purity`` analysis rule over this file.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.core.expand import ExpansionContext, expand_arc_reference
from repro.core.search_node import (
    NodeState,
    PRUNED,
    SearchNode,
    make_terminal_node,
)

#: One child of a VIABLE node, as the search driver hands it to a kernel:
#: ``(tree node handle, arc symbol codes, is-leaf flag)``.
Sibling = Tuple[object, np.ndarray, bool]

#: Environment variable selecting the default kernel (``scalar`` otherwise).
KERNEL_ENVIRONMENT_VARIABLE = "OASIS_KERNEL"

DEFAULT_KERNEL = "scalar"


class ExpansionKernel:
    """One strategy for running Algorithm 3 over a node's children.

    ``expand_arc`` expands a single arc; ``expand_children`` receives the
    whole sibling set of a VIABLE node at once (lazily iterable, so
    non-batching kernels preserve the child-by-child cursor access pattern)
    and returns one :class:`SearchNode` per child, *in child order* -- the
    driver's enqueue counter, and with it the heap tie-break order, depends
    on that.
    """

    name = ""

    def expand_arc(
        self,
        parent: SearchNode,
        tree_node,
        arc_symbols: np.ndarray,
        is_leaf: bool,
        context: ExpansionContext,
    ) -> SearchNode:
        raise NotImplementedError

    def expand_children(
        self,
        parent: SearchNode,
        siblings: Iterable[Sibling],
        context: ExpansionContext,
    ) -> List[SearchNode]:
        return [
            self.expand_arc(parent, tree_node, arc_symbols, is_leaf, context)
            for tree_node, arc_symbols, is_leaf in siblings
        ]

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def _scalar_expand(
    tree_node,
    column: np.ndarray,
    arc_symbols: np.ndarray,
    start: int,
    is_leaf: bool,
    max_score: int,
    best_ending_here: int,
    depth: int,
    context: ExpansionContext,
) -> SearchNode:
    """The scratch-buffer column loop, from ``arc_symbols[start:]``.

    ``column`` seeds the DP and is strictly read-only here: it may be the
    parent node's column (scalar kernel, ``start=0``) or a row of the batch
    scratch holding an already-computed-and-masked first column (batched
    kernel survivors, ``start=1``).  All writes go to the context's
    ping-pong column scratch, and the surviving column is copied out exactly
    once, on a VIABLE return.
    """
    gap = context.gap_penalty
    heuristic = context.heuristic
    min_score = context.min_score
    profile = context.profile
    offsets = context._offsets
    bound = context.scratch_bound
    flags = context.scratch_flags
    limit = context.scratch_limit
    row = context.scratch_row
    fast = (
        context.prune_non_positive
        and context.prune_dominated
        and context.prune_threshold
        and not context.track_pruning
    )

    read = column
    write = context.scratch_col_a
    other = context.scratch_col_b
    for index in range(start, len(arc_symbols)):
        symbol = arc_symbols[index]
        depth += 1
        substitution = profile[symbol]

        # Candidate column, straight into the write buffer: diagonal
        # (substitution) vs horizontal (deletion) terms, then row 0, where
        # only a deletion from the previous row-0 entry is possible -- no
        # reset to zero.
        np.add(read, gap, out=row)
        np.add(read[:-1], substitution, out=write[1:])
        np.maximum(write[1:], row[1:], out=write[1:])
        write[0] = row[0]
        # Vertical (insertion) dependency, in place:
        #   new[i] = max(candidate[i], new[i-1] + gap)
        #          = max_{k <= i} (candidate[k] + gap * (i - k))
        np.subtract(write, offsets, out=write)
        np.maximum.accumulate(write, out=write)
        np.add(write, offsets, out=write)
        context.columns_expanded += 1

        column_best = int(np.maximum.reduce(write))
        if column_best > max_score:
            max_score = column_best
        if column_best > best_ending_here:
            best_ending_here = column_best

        # --- Alignment pruning (Section 3.2) --------------------------- #
        if fast:
            # Fused mask: non-positive | dominated | hopeless collapses to
            # one comparison against ``max(0, cutoff - heuristic)`` (exactly
            # the reference's three rules: new <= 0, new + h <= max_score,
            # new + h < min_score), a vector that only changes when the
            # path's max_score rises -- so the per-column bound array and
            # its two comparisons disappear.  The early-termination test
            # collapses to "did everything prune?": any survivor has
            # bound > cutoff >= max_score and bound >= min_score, so neither
            # termination branch can fire and the bound's numeric value is
            # never needed; no survivor terminates with f = max_score.  The
            # second per-column reduction of the reference path, and its
            # PRUNED writes into a column about to be discarded, disappear
            # with it.
            cutoff = max_score if max_score >= min_score - 1 else min_score - 1
            if cutoff != context.fast_cutoff:
                np.subtract(cutoff, heuristic, out=limit)
                np.maximum(limit, 0, out=limit)
                context.fast_cutoff = cutoff
            mask = flags[0]
            np.less_equal(write, limit, out=mask)
            if np.logical_and.reduce(mask):
                return make_terminal_node(tree_node, max_score, min_score, depth)
            write[mask] = PRUNED
        else:
            np.add(write, heuristic, out=bound)
            non_positive = flags[0]
            dominated = flags[1]
            hopeless = flags[2]
            survivors = flags[3]
            scratch = flags[4]
            np.less_equal(write, 0, out=non_positive)
            np.less_equal(bound, max_score, out=dominated)
            np.less(bound, min_score, out=hopeless)
            if context.track_pruning:
                context.pruned_non_positive += int(non_positive.sum())
                np.logical_not(non_positive, out=survivors)
                np.logical_and(survivors, dominated, out=scratch)
                context.pruned_dominated += int(scratch.sum())
                np.logical_not(dominated, out=scratch)
                np.logical_and(survivors, scratch, out=survivors)
                np.logical_and(survivors, hopeless, out=survivors)
                context.pruned_threshold += int(survivors.sum())
            mask = None
            if context.prune_non_positive:
                mask = non_positive
            if context.prune_dominated:
                mask = dominated if mask is None else np.logical_or(mask, dominated, out=mask)
            if context.prune_threshold:
                mask = hopeless if mask is None else np.logical_or(mask, hopeless, out=mask)
            if mask is not None:
                write[mask] = PRUNED
                bound[mask] = PRUNED
            # --- Early termination checks (general form) --------------- #
            f_bound = int(bound.max())
            if f_bound <= max_score:
                return make_terminal_node(tree_node, max_score, min_score, depth)
            if f_bound < min_score:
                return SearchNode(
                    tree_node=tree_node,
                    column=None,
                    max_score=max_score,
                    f=f_bound,
                    b=best_ending_here,
                    state=NodeState.UNVIABLE,
                    depth=depth,
                )

        read = write
        write = other if write is context.scratch_col_a else context.scratch_col_a

    # All arc symbols processed and the node is still promising.
    if is_leaf:
        # No further expansion is possible below a leaf: the strongest
        # alignment along this path is whatever has been found already.
        return make_terminal_node(tree_node, max_score, min_score, depth)
    np.add(read, heuristic, out=bound)
    return SearchNode(
        tree_node=tree_node,
        column=read.copy(),
        max_score=max_score,
        f=int(bound.max()),
        b=best_ending_here,
        state=NodeState.VIABLE,
        depth=depth,
    )


class ScalarKernel(ExpansionKernel):
    """The reference algorithm over preallocated scratch (the default)."""

    name = "scalar"

    def expand_arc(
        self,
        parent: SearchNode,
        tree_node,
        arc_symbols: np.ndarray,
        is_leaf: bool,
        context: ExpansionContext,
    ) -> SearchNode:
        column = parent.column
        if column is None:
            raise ValueError("cannot expand below a node whose column was discarded")
        return _scalar_expand(
            tree_node,
            column,
            arc_symbols,
            0,
            is_leaf,
            parent.max_score,
            PRUNED,
            parent.depth,
            context,
        )


class BatchedKernel(ExpansionKernel):
    """Sibling-batched expansion: one 2-D update for every child's first column.

    Children of one suffix-tree node start with pairwise distinct symbols, so
    the sibling set stacks into at most ``symbol_count`` rows, every row
    seeded by the *same* parent column -- the whole first-column fan is one
    broadcasted candidate computation, one ``axis=1`` running-maximum, one
    2-D prune mask.  Children whose first column prunes out entirely (the
    common case: most arcs die immediately) are finished without ever
    leaving the batch; survivors continue through the scalar loop for
    ``arc_symbols[1:]``.
    """

    name = "batched"

    def expand_arc(
        self,
        parent: SearchNode,
        tree_node,
        arc_symbols: np.ndarray,
        is_leaf: bool,
        context: ExpansionContext,
    ) -> SearchNode:
        # A single arc has nothing to batch; run the scalar loop directly.
        return ScalarKernel.expand_arc(self, parent, tree_node, arc_symbols, is_leaf, context)

    def expand_children(
        self,
        parent: SearchNode,
        siblings: Iterable[Sibling],
        context: ExpansionContext,
    ) -> List[SearchNode]:
        children = list(siblings)
        count = len(children)
        if count < 2 or count > context.batch_symbols.shape[0]:
            # Nothing to batch (or a cursor with duplicate first symbols
            # overflowing the scratch -- impossible for real suffix trees,
            # but fall back rather than corrupt).
            return [
                self.expand_arc(parent, tree_node, arc_symbols, is_leaf, context)
                for tree_node, arc_symbols, is_leaf in children
            ]
        column = parent.column
        if column is None:
            raise ValueError("cannot expand below a node whose column was discarded")

        gap = context.gap_penalty
        heuristic = context.heuristic
        min_score = context.min_score
        offsets = context._offsets
        depth = parent.depth + 1

        symbols = context.batch_symbols[:count]
        for index, (tree_node, arc_symbols, is_leaf) in enumerate(children):
            symbols[index] = arc_symbols[0]
        substitution = context.batch_profile[:count]
        np.take(context.profile, symbols, axis=0, out=substitution)

        # First DP column of every child arc, one 2-D update: each row is
        # the reference candidate/running-maximum computation, broadcast
        # against the shared parent column.
        new = context.batch_columns[:count]
        row = context.scratch_row
        np.add(column, gap, out=row)
        np.add(substitution, column[:-1], out=new[:, 1:])
        np.maximum(new[:, 1:], row[1:], out=new[:, 1:])
        new[:, 0] = row[0]
        np.subtract(new, offsets, out=new)
        np.maximum.accumulate(new, axis=1, out=new)
        np.add(new, offsets, out=new)
        context.columns_expanded += count

        best = context.batch_best[:count]
        np.maximum.reduce(new, axis=1, out=best)
        peak = context.batch_max[:count]
        np.maximum(best, parent.max_score, out=peak)

        flags = context.batch_flags
        fast = (
            context.prune_non_positive
            and context.prune_dominated
            and context.prune_threshold
            and not context.track_pruning
        )
        nodes: List[SearchNode] = []
        if fast:
            # Per-row fused mask against the per-row cutoff (see the scalar
            # kernel: the bound's value is only needed for rows that
            # survive, and those continue below).  When no row beat the
            # parent's running maximum -- the common case by far -- every
            # row's cutoff *is* the parent cutoff, so the scalar kernel's
            # cached 1-D limit vector broadcasts over the whole batch and
            # the per-row threshold matrix is never materialised.
            mask = flags[0, :count]
            if int(np.maximum.reduce(best)) <= parent.max_score:
                cutoff = (
                    parent.max_score
                    if parent.max_score >= min_score - 1
                    else min_score - 1
                )
                limit = context.scratch_limit
                if cutoff != context.fast_cutoff:
                    np.subtract(cutoff, heuristic, out=limit)
                    np.maximum(limit, 0, out=limit)
                    context.fast_cutoff = cutoff
                np.less_equal(new, limit, out=mask)
            else:
                cutoffs = context.batch_limit[:count]
                np.maximum(peak, min_score - 1, out=cutoffs)
                thresh = context.batch_bound[:count]
                np.subtract(cutoffs[:, None], heuristic, out=thresh)
                np.maximum(thresh, 0, out=thresh)
                np.less_equal(new, thresh, out=mask)
            done = context.batch_done[:count]
            np.logical_and.reduce(mask, axis=1, out=done)
            for index, (tree_node, arc_symbols, is_leaf) in enumerate(children):
                if done[index]:
                    nodes.append(
                        make_terminal_node(tree_node, int(peak[index]), min_score, depth)
                    )
                    continue
                survivor = new[index]
                survivor[mask[index]] = PRUNED
                nodes.append(
                    _scalar_expand(
                        tree_node,
                        survivor,
                        arc_symbols,
                        1,
                        is_leaf,
                        int(peak[index]),
                        int(best[index]),
                        depth,
                        context,
                    )
                )
            return nodes

        bound = context.batch_bound[:count]
        np.add(new, heuristic, out=bound)
        non_positive = flags[0, :count]
        dominated = flags[1, :count]
        hopeless = flags[2, :count]
        survivors = flags[3, :count]
        scratch = flags[4, :count]
        np.less_equal(new, 0, out=non_positive)
        np.less_equal(bound, peak[:, None], out=dominated)
        np.less(bound, min_score, out=hopeless)
        if context.track_pruning:
            # Every child's first column is computed unconditionally on the
            # scalar path too, so summing over all rows at once accumulates
            # exactly the per-column counts the reference path would.
            context.pruned_non_positive += int(non_positive.sum())
            np.logical_not(non_positive, out=survivors)
            np.logical_and(survivors, dominated, out=scratch)
            context.pruned_dominated += int(scratch.sum())
            np.logical_not(dominated, out=scratch)
            np.logical_and(survivors, scratch, out=survivors)
            np.logical_and(survivors, hopeless, out=survivors)
            context.pruned_threshold += int(survivors.sum())
        mask = None
        if context.prune_non_positive:
            mask = non_positive
        if context.prune_dominated:
            mask = dominated if mask is None else np.logical_or(mask, dominated, out=mask)
        if context.prune_threshold:
            mask = hopeless if mask is None else np.logical_or(mask, hopeless, out=mask)
        if mask is not None:
            new[mask] = PRUNED
            bound[mask] = PRUNED
        limit = context.batch_limit[:count]
        np.maximum.reduce(bound, axis=1, out=limit)
        for index, (tree_node, arc_symbols, is_leaf) in enumerate(children):
            f_bound = int(limit[index])
            path_best = int(peak[index])
            if f_bound <= path_best:
                nodes.append(make_terminal_node(tree_node, path_best, min_score, depth))
                continue
            if f_bound < min_score:
                nodes.append(
                    SearchNode(
                        tree_node=tree_node,
                        column=None,
                        max_score=path_best,
                        f=f_bound,
                        b=int(best[index]),
                        state=NodeState.UNVIABLE,
                        depth=depth,
                    )
                )
                continue
            nodes.append(
                _scalar_expand(
                    tree_node,
                    new[index],
                    arc_symbols,
                    1,
                    is_leaf,
                    path_best,
                    int(best[index]),
                    depth,
                    context,
                )
            )
        return nodes


class ReferenceKernel(ExpansionKernel):
    """The original per-column implementation, unmodified (the parity oracle)."""

    name = "reference"

    def expand_arc(
        self,
        parent: SearchNode,
        tree_node,
        arc_symbols: np.ndarray,
        is_leaf: bool,
        context: ExpansionContext,
    ) -> SearchNode:
        return expand_arc_reference(parent, tree_node, arc_symbols, is_leaf, context)


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
_REGISTRY: Dict[str, Callable[[], ExpansionKernel]] = {}


def register_kernel(name: str, factory: Callable[[], ExpansionKernel]) -> None:
    """Register a kernel factory under a selection name."""
    _REGISTRY[name] = factory


def available_kernels() -> Tuple[str, ...]:
    """The registered kernel names, sorted (CLI choices, error messages)."""
    return tuple(sorted(_REGISTRY))


def get_kernel(
    kernel: Union[str, ExpansionKernel, None] = None,
) -> ExpansionKernel:
    """Resolve a kernel selection into a kernel instance.

    Precedence: an explicit instance is used as-is, an explicit name is
    looked up, ``None`` falls back to the ``OASIS_KERNEL`` environment
    variable and finally to the ``scalar`` default.
    """
    if isinstance(kernel, ExpansionKernel):
        return kernel
    if kernel is None:
        kernel = os.environ.get(KERNEL_ENVIRONMENT_VARIABLE) or DEFAULT_KERNEL
    try:
        factory = _REGISTRY[kernel]
    except KeyError:
        raise ValueError(
            f"unknown expansion kernel {kernel!r}; "
            f"available: {', '.join(available_kernels())}"
        ) from None
    return factory()


register_kernel("scalar", ScalarKernel)
register_kernel("batched", BatchedKernel)
register_kernel("reference", ReferenceKernel)
