"""Arc expansion: Algorithm 3, the core of OASIS.

Expanding a suffix-tree node fills the portion of the Smith-Waterman matrix
whose columns are labelled by the symbols on the node's incoming arc, seeded
with the parent search node's final column.  Three things differ from plain
Smith-Waterman:

1. **No reset to zero.**  Restarting an alignment at a later target position
   would duplicate work done on another tree path (every substring of the
   database is the prefix of some suffix), so scores are allowed to go
   negative -- and are then pruned.

2. **Alignment pruning** (Section 3.2).  A cell is discarded (set to the
   ``PRUNED`` sentinel) when
   (a) its score is non-positive,
   (b) even the optimistic heuristic cannot lift it above the strongest
       alignment already found along this path, or
   (c) it cannot reach the ``min_score`` threshold.

3. **Early termination.**  After each column the expansion checks whether any
   surviving cell could still beat the path's best alignment
   (``f > max_score``) and whether it could still reach ``min_score``; if not,
   the node is finished immediately and tagged ACCEPTED or UNVIABLE.

The column update itself is vectorised: the horizontal and diagonal terms are
straight NumPy expressions and the vertical (insertion) dependency
``column[i] = max(candidate[i], column[i-1] + gap)`` is resolved with a
running-maximum transform, so the per-cell work stays out of the Python
interpreter.

Two implementations live side by side:

* :func:`expand_arc_reference` -- the original, allocation-per-column form,
  kept verbatim as the parity oracle every kernel is gated against;
* :func:`expand_arc` -- the public entry point, which now runs the
  scratch-buffer scalar kernel from :mod:`repro.core.kernels`: the same
  algorithm over preallocated per-query scratch arrays (no per-column
  allocation, fused prune mask, no reductions or ``PRUNED`` writes whose
  result is about to be discarded).

The :class:`ExpansionContext` owns the scratch arrays because it already owns
everything else that is per-query: kernels themselves are forbidden from
allocating inside their column loops (the ``kernel-purity`` analysis rule).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.search_node import NodeState, PRUNED, SearchNode


class ExpansionContext:
    """Query-specific constants shared by every expansion of one search.

    Holding them in one object (rather than passing half a dozen arrays
    through every call) keeps :func:`expand_arc` signatures readable and lets
    the statistics counters live in one place.
    """

    def __init__(
        self,
        query_codes: np.ndarray,
        score_lookup: np.ndarray,
        gap_penalty: int,
        heuristic: np.ndarray,
        min_score: int,
        prune_non_positive: bool = True,
        prune_dominated: bool = True,
        prune_threshold: bool = True,
        track_pruning: bool = False,
    ):
        if min_score < 1:
            raise ValueError("min_score must be at least 1")
        if gap_penalty >= 0:
            raise ValueError("the gap penalty must be negative")
        self.query_codes = np.asarray(query_codes)
        self.score_lookup = score_lookup
        self.gap_penalty = int(gap_penalty)
        self.heuristic = np.asarray(heuristic, dtype=np.int64)
        self.min_score = int(min_score)
        self.query_length = len(self.query_codes)
        # Offsets used by the running-maximum resolution of the vertical
        # dependency; precomputed once per query.
        self._offsets = self.gap_penalty * np.arange(self.query_length + 1, dtype=np.int64)
        # Per-symbol substitution profile: profile[t][i-1] = S(q_i, t).
        # Precomputing it once per query turns the per-column score lookup
        # into a plain row read.
        self.profile = np.ascontiguousarray(score_lookup[self.query_codes, :].T.astype(np.int64))
        #: Rule switches (all on by default; the ablation benchmark turns
        #: individual rules off to measure their contribution).  Disabling a
        #: rule never changes the result set, only the amount of work.
        self.prune_non_positive = prune_non_positive
        self.prune_dominated = prune_dominated
        self.prune_threshold = prune_threshold
        #: When True, per-rule cell counts are accumulated (slightly slower).
        self.track_pruning = track_pruning
        #: Number of matrix columns expanded (the Figure 4 metric).
        self.columns_expanded = 0
        #: Number of individual cells pruned by each rule (only meaningful
        #: when ``track_pruning`` is enabled).
        self.pruned_non_positive = 0
        self.pruned_dominated = 0
        self.pruned_threshold = 0
        # ------------------------------------------------------------------
        # Kernel scratch.  The expansion kernels (repro.core.kernels) never
        # allocate inside their column loops -- the kernel-purity analysis
        # rule enforces it -- so every transient array they need is
        # preallocated here, once per query.
        length = self.query_length + 1
        symbol_count = self.profile.shape[0]
        #: Ping-pong column buffers for the scalar kernel: one is read while
        #: the other is written, so a parent's column is never mutated.
        self.scratch_col_a = np.empty(length, dtype=np.int64)
        self.scratch_col_b = np.empty(length, dtype=np.int64)
        #: Horizontal (deletion) term of the candidate column.
        self.scratch_row = np.empty(length, dtype=np.int64)
        #: Optimistic scores (``column + heuristic``).
        self.scratch_bound = np.empty(length, dtype=np.int64)
        #: Boolean planes for the pruning-rule masks and their combinations.
        self.scratch_flags = np.empty((5, length), dtype=bool)
        #: Fused prune limit for the all-rules fast path:
        #: ``max(0, cutoff - heuristic)`` elementwise, valid while the cutoff
        #: (``max(path max_score, min_score - 1)``) equals ``fast_cutoff``.
        #: One comparison against it is exactly the reference's three-way
        #: non-positive|dominated|hopeless mask, and the cutoff only changes
        #: when a path's ``max_score`` rises, so the recompute amortises away.
        self.scratch_limit = np.empty(length, dtype=np.int64)
        self.fast_cutoff: Optional[int] = None
        #: Sibling-batch scratch: a node's children all have distinct first
        #: arc symbols, so the fan-out is bounded by the symbol count and the
        #: batched kernel can run every child's first DP column as one 2-D
        #: update over these buffers.
        self.batch_symbols = np.empty(symbol_count, dtype=np.intp)
        self.batch_profile = np.empty((symbol_count, self.query_length), dtype=np.int64)
        self.batch_columns = np.empty((symbol_count, length), dtype=np.int64)
        self.batch_bound = np.empty((symbol_count, length), dtype=np.int64)
        self.batch_flags = np.empty((5, symbol_count, length), dtype=bool)
        self.batch_best = np.empty(symbol_count, dtype=np.int64)
        self.batch_max = np.empty(symbol_count, dtype=np.int64)
        self.batch_limit = np.empty(symbol_count, dtype=np.int64)
        self.batch_done = np.empty(symbol_count, dtype=bool)

    # ------------------------------------------------------------------ #
    def make_root_column(self) -> np.ndarray:
        """The seed column of Algorithm 2: zeros, pruned where hopeless."""
        column = np.zeros(self.query_length + 1, dtype=np.int64)
        hopeless = self.heuristic < self.min_score
        column[hopeless] = PRUNED
        return column


def expand_arc_reference(
    parent: SearchNode,
    tree_node,
    arc_symbols: np.ndarray,
    is_leaf: bool,
    context: ExpansionContext,
) -> SearchNode:
    """Algorithm 3, reference form: expand one suffix-tree arc below ``parent``.

    This is the original per-column implementation, kept verbatim as the
    parity oracle for the kernels in :mod:`repro.core.kernels` (run it via
    ``OASIS_KERNEL=reference`` or ``kernel="reference"``).  It allocates one
    candidate array per column and scans each column twice
    (``new_column.max()`` then ``optimistic.max()``); the scalar kernel does
    neither, and is gated byte-identical against this function.

    Parameters
    ----------
    parent:
        The search node being expanded (its ``column`` seeds the matrix).
    tree_node:
        The suffix-tree handle of the child node (stored on the result).
    arc_symbols:
        Integer codes labelling the child's incoming arc.
    is_leaf:
        Whether the child is a leaf (no further expansion is possible below
        it, so a viable outcome is impossible).
    context:
        The per-query :class:`ExpansionContext`.

    Returns
    -------
    SearchNode
        A new search node tagged VIABLE, ACCEPTED or UNVIABLE.
    """
    gap = context.gap_penalty
    heuristic = context.heuristic
    min_score = context.min_score
    profile = context.profile
    offsets = context._offsets
    all_rules = (
        context.prune_non_positive and context.prune_dominated and context.prune_threshold
    )

    column = parent.column
    if column is None:
        raise ValueError("cannot expand below a node whose column was discarded")
    max_score = parent.max_score
    depth = parent.depth

    best_ending_here = PRUNED
    final_column: Optional[np.ndarray] = None

    for symbol in arc_symbols:
        depth += 1
        substitution = profile[symbol]

        # Row 0 (empty query prefix): only a deletion from the previous row-0
        # entry is possible -- no reset to zero.
        candidate = np.empty_like(column)
        candidate[0] = column[0] + gap
        candidate[1:] = np.maximum(column[1:] + gap, column[:-1] + substitution)
        # Vertical (insertion) dependency, resolved without a Python loop:
        #   new[i] = max(candidate[i], new[i-1] + gap)
        #          = max_{k <= i} (candidate[k] + gap * (i - k))
        new_column = np.maximum.accumulate(candidate - offsets) + offsets
        context.columns_expanded += 1

        column_best = int(new_column.max())
        if column_best > max_score:
            max_score = column_best
        if column_best > best_ending_here:
            best_ending_here = column_best

        # --- Alignment pruning (Section 3.2) --------------------------- #
        optimistic = new_column + heuristic
        if all_rules and not context.track_pruning:
            # Fast path: the three rules collapse into two comparisons.
            #   dominated-or-hopeless  <=>  optimistic <= max(max_score, min_score - 1)
            mask = (new_column <= 0) | (optimistic <= max(max_score, min_score - 1))
        else:
            non_positive = new_column <= 0
            dominated = optimistic <= max_score
            hopeless = optimistic < min_score
            if context.track_pruning:
                context.pruned_non_positive += int(non_positive.sum())
                context.pruned_dominated += int((~non_positive & dominated).sum())
                context.pruned_threshold += int((~non_positive & ~dominated & hopeless).sum())
            mask = None
            if context.prune_non_positive:
                mask = non_positive
            if context.prune_dominated:
                mask = dominated if mask is None else (mask | dominated)
            if context.prune_threshold:
                mask = hopeless if mask is None else (mask | hopeless)
        if mask is not None:
            new_column[mask] = PRUNED
            optimistic[mask] = PRUNED

        column = new_column
        final_column = new_column

        # --- Early termination checks ---------------------------------- #
        f_bound = int(optimistic.max())
        if f_bound <= max_score:
            # Nothing below this node can beat what the path already found.
            state = NodeState.ACCEPTED if max_score >= min_score else NodeState.UNVIABLE
            return SearchNode(
                tree_node=tree_node,
                column=None,
                max_score=max_score,
                f=max_score,
                b=max_score,
                state=state,
                depth=depth,
            )
        if f_bound < min_score:
            return SearchNode(
                tree_node=tree_node,
                column=None,
                max_score=max_score,
                f=f_bound,
                b=best_ending_here,
                state=NodeState.UNVIABLE,
                depth=depth,
            )

    # All arc symbols processed and the node is still promising.
    assert final_column is not None, "suffix tree arcs are never empty"
    f_bound = int((final_column + heuristic).max())
    if is_leaf:
        # No further expansion is possible below a leaf: the strongest
        # alignment along this path is whatever has been found already.
        state = NodeState.ACCEPTED if max_score >= min_score else NodeState.UNVIABLE
        return SearchNode(
            tree_node=tree_node,
            column=None,
            max_score=max_score,
            f=max_score,
            b=max_score,
            state=state,
            depth=depth,
        )
    return SearchNode(
        tree_node=tree_node,
        column=final_column,
        max_score=max_score,
        f=f_bound,
        b=best_ending_here,
        state=NodeState.VIABLE,
        depth=depth,
    )


_SCALAR_KERNEL = None


def expand_arc(
    parent: SearchNode,
    tree_node,
    arc_symbols: np.ndarray,
    is_leaf: bool,
    context: ExpansionContext,
) -> SearchNode:
    """Algorithm 3: expand one suffix-tree arc below ``parent``.

    The module-level entry point now runs the scratch-buffer scalar kernel
    (see :mod:`repro.core.kernels`): same results as
    :func:`expand_arc_reference` -- the kernels are parity-gated against it
    cell for cell -- with no per-column allocation and no reductions whose
    result is about to be discarded.  The import is deferred and cached
    because :mod:`repro.core.kernels` imports this module.
    """
    global _SCALAR_KERNEL
    if _SCALAR_KERNEL is None:
        from repro.core.kernels import ScalarKernel

        _SCALAR_KERNEL = ScalarKernel()
    return _SCALAR_KERNEL.expand_arc(parent, tree_node, arc_symbols, is_leaf, context)
