"""Result types shared by OASIS and the baseline search engines.

All three engines (OASIS, Smith-Waterman, the BLAST-like baseline) report
their results as :class:`SearchResult` objects containing one
:class:`SearchHit` per matching database sequence -- mirroring the paper's
reporting convention of "the single strongest alignment for each sequence in
the database".  OASIS additionally records *when* each hit was emitted
relative to the start of the query (:class:`OnlineResultLog`), which is the
quantity plotted in Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Alignment:
    """A concrete local alignment between the query and one target sequence.

    Coordinates are 0-based, end-exclusive, and local to the target sequence.
    ``aligned_query``/``aligned_target`` are the padded alignment strings with
    ``-`` marking gaps, as in Figure 1 of the paper.
    """

    score: int
    query_start: int
    query_end: int
    target_start: int
    target_end: int
    aligned_query: str = ""
    aligned_target: str = ""

    @property
    def query_span(self) -> int:
        return self.query_end - self.query_start

    @property
    def target_span(self) -> int:
        return self.target_end - self.target_start

    @property
    def length(self) -> int:
        """Number of alignment columns (0 when the operations were not traced)."""
        return len(self.aligned_query)

    def identity(self) -> float:
        """Fraction of alignment columns that are exact matches."""
        if not self.aligned_query:
            return 0.0
        matches = sum(
            1
            for a, b in zip(self.aligned_query, self.aligned_target)
            if a == b and a != "-"
        )
        return matches / len(self.aligned_query)

    def pretty(self, width: int = 60) -> str:
        """A two-row textual rendering of the alignment."""
        if not self.aligned_query:
            return f"<alignment score={self.score} (operations not traced)>"
        lines: List[str] = []
        for start in range(0, len(self.aligned_query), width):
            q = self.aligned_query[start : start + width]
            t = self.aligned_target[start : start + width]
            marks = "".join("|" if a == b and a != "-" else " " for a, b in zip(q, t))
            lines.extend([f"query  {q}", f"       {marks}", f"target {t}", ""])
        return "\n".join(lines).rstrip()


def hit_order_key(hit: "SearchHit") -> Tuple[int, str, int]:
    """Canonical total order over hits: decreasing score, then identifier/start.

    Every engine sorts (and every merger of partial results re-sorts) with this
    key, so a result assembled from index shards is byte-for-byte comparable to
    the result of one monolithic search: equal scores are broken by the target
    sequence identifier and, when an alignment was traced, by its start offset
    in the target.  The key deliberately avoids ``sequence_index`` -- shard
    results carry shard-local indices until they are remapped, and identifiers
    are the stable cross-representation name of a sequence.
    """
    start = hit.alignment.target_start if hit.alignment is not None else 0
    return (-hit.score, hit.sequence_identifier, start)


@dataclass
class SearchHit:
    """The strongest alignment found for one database sequence."""

    sequence_index: int
    sequence_identifier: str
    score: int
    evalue: Optional[float] = None
    alignment: Optional[Alignment] = None
    #: Seconds since the start of the query at which this hit was emitted
    #: (only meaningful for the online engine; None otherwise).
    emitted_at: Optional[float] = None

    def __repr__(self) -> str:
        evalue = f", evalue={self.evalue:.3g}" if self.evalue is not None else ""
        return (
            f"SearchHit({self.sequence_identifier!r}, score={self.score}{evalue})"
        )


@dataclass
class SearchResult:
    """The full outcome of one query against one database."""

    query: str
    engine: str
    hits: List[SearchHit] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    #: Number of dynamic-programming columns the engine expanded -- the
    #: filtering-efficiency metric of Figure 4.
    columns_expanded: int = 0
    parameters: Dict[str, object] = field(default_factory=dict)
    #: The statistics object of the execution that produced this result
    #: (an :class:`~repro.core.oasis.OasisSearchStatistics` for OASIS; other
    #: engines may leave it unset).  Attached per result so concurrent
    #: executions never clobber each other's counters.
    statistics: Optional[object] = None

    def __len__(self) -> int:
        return len(self.hits)

    def __iter__(self) -> Iterator[SearchHit]:
        return iter(self.hits)

    def __getitem__(self, index: int) -> SearchHit:
        return self.hits[index]

    @property
    def best_hit(self) -> Optional[SearchHit]:
        return self.hits[0] if self.hits else None

    @property
    def best_score(self) -> int:
        return self.hits[0].score if self.hits else 0

    def hit_for(self, sequence_identifier: str) -> Optional[SearchHit]:
        """Look up the hit for one sequence, if any."""
        for hit in self.hits:
            if hit.sequence_identifier == sequence_identifier:
                return hit
        return None

    def sequence_identifiers(self) -> List[str]:
        return [hit.sequence_identifier for hit in self.hits]

    def scores_by_sequence(self) -> Dict[str, int]:
        return {hit.sequence_identifier: hit.score for hit in self.hits}

    def sort_by_score(self) -> None:
        """Order hits canonically: decreasing score, ties by (identifier, start)."""
        self.hits.sort(key=hit_order_key)

    def is_sorted_by_score(self) -> bool:
        scores = [hit.score for hit in self.hits]
        return all(a >= b for a, b in zip(scores, scores[1:]))


@dataclass
class OnlineResultLog:
    """Emission timeline of an online search (the Figure 9 quantity).

    Each entry is ``(seconds since query start, cumulative results emitted)``.
    """

    events: List[Tuple[float, int]] = field(default_factory=list)

    def record(self, elapsed_seconds: float) -> None:
        self.events.append((elapsed_seconds, len(self.events) + 1))

    def __len__(self) -> int:
        return len(self.events)

    @property
    def first_result_seconds(self) -> Optional[float]:
        return self.events[0][0] if self.events else None

    @property
    def last_result_seconds(self) -> Optional[float]:
        return self.events[-1][0] if self.events else None

    def time_for_first(self, count: int) -> Optional[float]:
        """Seconds needed to emit the first ``count`` results."""
        if len(self.events) < count:
            return None
        return self.events[count - 1][0]

    def series(self) -> List[Tuple[float, int]]:
        """The raw (time, cumulative results) series for plotting/reporting."""
        return list(self.events)


def merge_best_hits(hits: Sequence[SearchHit]) -> List[SearchHit]:
    """Keep only the strongest hit per sequence, in canonical order."""
    best: Dict[str, SearchHit] = {}
    for hit in hits:
        existing = best.get(hit.sequence_identifier)
        if existing is None or hit.score > existing.score:
            best[hit.sequence_identifier] = hit
    return sorted(best.values(), key=hit_order_key)
