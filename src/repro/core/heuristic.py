"""The optimistic heuristic vector of Section 3.1.

Entry ``h[i]`` is an upper bound on the score that can still be gained by
aligning the remaining query portion ``q_{i+1} .. q_m`` against *any* target.
OASIS adds it to the partial alignment scores to obtain the ``f`` value that
orders the priority queue, so the bound must never underestimate
(admissibility is what guarantees that results come out in decreasing score
order and that nothing above the threshold is missed).

With non-positive insertion/deletion penalties the bound is simply the sum of
each remaining symbol's best possible substitution score; symbols whose best
score is negative contribute nothing (the alignment is free to stop before
them), hence the clamp at zero.
"""

from __future__ import annotations

import numpy as np

from repro.scoring.matrix import SubstitutionMatrix


def compute_heuristic_vector(query_codes: np.ndarray, matrix: SubstitutionMatrix) -> np.ndarray:
    """Return ``h`` of length ``m + 1``: best achievable score after position i.

    ``h[m]`` is 0 (nothing of the query remains); ``h[0]`` bounds the score of
    any alignment of the full query.
    """
    query_codes = np.asarray(query_codes)
    m = len(query_codes)
    best_per_symbol = matrix.max_row_scores()[query_codes]
    gains = np.maximum(best_per_symbol, 0).astype(np.int64)
    heuristic = np.zeros(m + 1, dtype=np.int64)
    # h[i] = h[i + 1] + gain of q_{i+1}; a reversed cumulative sum.
    heuristic[:m] = gains[::-1].cumsum()[::-1]
    return heuristic


def maximum_possible_score(query_codes: np.ndarray, matrix: SubstitutionMatrix) -> int:
    """The largest score any alignment of this query can achieve (``h[0]``)."""
    return int(compute_heuristic_vector(query_codes, matrix)[0])
