"""OasisEngine: the user-facing facade over index construction and search.

Typical use::

    from repro import OasisEngine
    from repro.scoring import pam30, FixedGapModel

    engine = OasisEngine.build(database, matrix=pam30(), gap_model=FixedGapModel(-8))
    result = engine.search("DKDGDGCITTKEL", evalue=20_000)
    for hit in result:
        print(hit.sequence_identifier, hit.score, hit.evalue)

The engine owns the suffix-tree index (in-memory by default; a disk-resident
index built through :mod:`repro.storage` can be attached instead), the scoring
configuration and the E-value conversion, and exposes both the batch
(:meth:`search`) and the online/streaming (:meth:`search_online`) interfaces.
"""

from __future__ import annotations

import logging
import os
import threading
from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Union

from repro.core.evalue import SelectivityConverter
from repro.core.oasis import OasisSearch, OasisSearchStatistics, QueryExecution
from repro.core.results import SearchHit, SearchResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.parallel.executor import BatchSearchReport
from repro.scoring.gaps import FixedGapModel, GapModel
from repro.scoring.matrix import SubstitutionMatrix
from repro.sequences.database import SequenceDatabase
from repro.storage.builder import build_disk_image
from repro.storage.disk_tree import DEFAULT_BUFFER_POOL_BYTES, DiskSuffixTree
from repro.suffixtree.cursor import SuffixTreeCursor
from repro.suffixtree.generalized import GeneralizedSuffixTree
from repro.suffixtree.partitioned import PartitionedTreeBuilder

PathLike = Union[str, os.PathLike]

# Plain stdlib logging, not repro.obs.logsetup: core sits *below* obs in the
# layering DAG, and __name__ already lives in the "repro." hierarchy that
# obs.logsetup.configure_logging manages -- the handler wiring still applies.
logger = logging.getLogger(__name__)


class OasisEngine:
    """An OASIS local-alignment search engine over one sequence database."""

    def __init__(
        self,
        cursor: SuffixTreeCursor,
        matrix: SubstitutionMatrix,
        gap_model: GapModel = FixedGapModel(-1),
        converter: Optional[SelectivityConverter] = None,
        kernel=None,
    ):
        self.cursor = cursor
        self.matrix = matrix
        self.gap_model = gap_model
        self.converter = converter or SelectivityConverter(matrix, cursor.database)
        self._search = OasisSearch(cursor, matrix, gap_model, kernel=kernel)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        database: SequenceDatabase,
        matrix: SubstitutionMatrix,
        gap_model: GapModel = FixedGapModel(-1),
        partitioned: bool = False,
        max_partition_size: int = 50_000,
        kernel=None,
    ) -> "OasisEngine":
        """Build an in-memory suffix-tree index and wrap it in an engine.

        Set ``partitioned=True`` to use the memory-bounded Hunt-et-al.-style
        construction (the result is identical; only the construction footprint
        differs).
        """
        logger.info(
            "building in-memory index for %s (%d sequences, partitioned=%s)",
            database.name,
            len(database),
            partitioned,
        )
        if partitioned:
            tree: SuffixTreeCursor = PartitionedTreeBuilder(
                max_partition_size=max_partition_size
            ).build(database)
        else:
            tree = GeneralizedSuffixTree.build(database)
        return cls(tree, matrix, gap_model, kernel=kernel)

    @classmethod
    def build_on_disk(
        cls,
        database: SequenceDatabase,
        matrix: SubstitutionMatrix,
        image_path: PathLike,
        gap_model: GapModel = FixedGapModel(-1),
        block_size: int = 2048,
        buffer_pool_bytes: int = DEFAULT_BUFFER_POOL_BYTES,
        simulated_miss_latency: float = 0.0,
        kernel=None,
    ) -> "OasisEngine":
        """Build the index, write the Section-3.4 disk image, search through it.

        This is the configuration the paper's buffer-pool experiments
        (Figures 7-8) use: every node and symbol access during the search goes
        through the buffer pool of the returned engine's cursor.
        """
        logger.info(
            "building disk image at %s (block_size=%d, pool=%d bytes)",
            image_path,
            block_size,
            buffer_pool_bytes,
        )
        tree = GeneralizedSuffixTree.build(database)
        build_disk_image(tree, image_path, block_size=block_size)
        disk = DiskSuffixTree(
            image_path,
            database,
            buffer_pool_bytes=buffer_pool_bytes,
            simulated_miss_latency=simulated_miss_latency,
        )
        return cls(disk, matrix, gap_model, kernel=kernel)

    @staticmethod
    def build_sharded(
        database: SequenceDatabase,
        matrix: SubstitutionMatrix,
        gap_model: GapModel = FixedGapModel(-1),
        shard_count: int = 2,
        backend=None,
        **kwargs,
    ):
        """Facade over :meth:`repro.sharding.ShardedEngine.build`.

        Splits the database into ``shard_count`` balanced shards, indexes each
        independently, and returns a :class:`~repro.sharding.ShardedEngine`
        whose results are hit-for-hit identical to this engine's.
        ``backend`` selects the scatter strategy (``"serial"`` /
        ``"threads:N"``; process scatter needs a persistent index, see
        :meth:`open_sharded`).
        """
        from repro.sharding.engine import ShardedEngine

        return ShardedEngine.build(
            database,
            matrix,
            gap_model,
            shard_count=shard_count,
            backend=backend,
            **kwargs,
        )

    @staticmethod
    def open_sharded(directory: PathLike, backend=None, **kwargs):
        """Facade over :meth:`repro.sharding.ShardedEngine.open`: reopen a
        persistent sharded index directory from its catalog.  ``backend``
        selects the scatter strategy -- ``"serial"``, ``"threads:N"`` or
        ``"processes:N"`` (worker processes open shard images from this
        catalog and escape the GIL for CPU-bound search)."""
        from repro.sharding.engine import ShardedEngine

        return ShardedEngine.open(directory, backend=backend, **kwargs)

    # ------------------------------------------------------------------ #
    # Searching
    # ------------------------------------------------------------------ #
    @property
    def database(self) -> SequenceDatabase:
        return self.cursor.database

    @property
    def kernel(self) -> str:
        """The expansion kernel name this engine's searches run under."""
        return self._search.kernel.name

    @property
    def statistics(self) -> OasisSearchStatistics:
        """Work counters of the most recently *started* query.

        Serial callers can keep reading this after each search; concurrent
        callers must use the per-execution object instead -- every
        :class:`~repro.core.oasis.QueryExecution` owns its own statistics and
        every :class:`~repro.core.results.SearchResult` carries the statistics
        of exactly the execution that produced it (``result.statistics``).
        """
        return self._search.statistics

    def min_score_for(self, query: str, evalue: float) -> int:
        """The ``min_score`` equivalent to an E-value cutoff for this query."""
        return self.converter.min_score_for_evalue(evalue, len(query))

    def instrument(self, tracer) -> None:
        """Attach a tracer to the index's buffer pool, if it has one.

        Monolithic disk-backed engines route every page request through one
        pool; instrumenting it records pool hit/miss/eviction counters into
        ``tracer.metrics`` (see :meth:`repro.storage.BufferPool.instrument`).
        In-memory cursors have no pool and this is a no-op.  ``None``
        detaches.
        """
        instrument = getattr(self.cursor, "instrument", None)
        if instrument is not None:
            instrument(tracer)

    def execute(
        self,
        query: str,
        min_score: Optional[int] = None,
        evalue: Optional[float] = None,
        max_results: Optional[int] = None,
        compute_alignments: bool = False,
        time_budget: Optional[float] = None,
        cancel_event: Optional[threading.Event] = None,
        tracer=None,
    ) -> QueryExecution:
        """Create a self-contained, reentrant execution for one query.

        The execution owns its queue, statistics and timing; any number of
        them can run concurrently (interleaved on one thread or spread over a
        thread pool) against this engine's shared read-only index.  Iterate it
        for the online stream or call ``.result()`` for the batch result.
        Pass a :class:`~repro.obs.Tracer` to wrap the run in a span and
        record the search metrics.
        """
        threshold = self._resolve_threshold(query, min_score, evalue)
        return self._search.execute(
            query,
            min_score=threshold,
            max_results=max_results,
            compute_alignments=compute_alignments,
            statistics_model=self.converter.parameters,
            database_size=self.converter.database_size,
            time_budget=time_budget,
            cancel_event=cancel_event,
            tracer=tracer,
        )

    def search(
        self,
        query: str,
        min_score: Optional[int] = None,
        evalue: Optional[float] = None,
        max_results: Optional[int] = None,
        compute_alignments: bool = False,
        tracer=None,
    ) -> SearchResult:
        """Find the strongest alignment per sequence scoring above a threshold.

        Exactly one of ``min_score`` / ``evalue`` must be given (the paper's
        experiments specify E-values; Equation 3 converts them).  Results are
        ordered by decreasing score and annotated with E-values.
        """
        return self.execute(
            query,
            min_score=min_score,
            evalue=evalue,
            max_results=max_results,
            compute_alignments=compute_alignments,
            tracer=tracer,
        ).result()

    def search_online(
        self,
        query: str,
        min_score: Optional[int] = None,
        evalue: Optional[float] = None,
        max_results: Optional[int] = None,
        compute_alignments: bool = False,
    ) -> Iterator[SearchHit]:
        """Stream hits in decreasing score order (abort whenever satisfied)."""
        return iter(
            self.execute(
                query,
                min_score=min_score,
                evalue=evalue,
                max_results=max_results,
                compute_alignments=compute_alignments,
            )
        )

    def search_many(
        self,
        queries: Iterable[str],
        workers: int = 4,
        min_score: Optional[int] = None,
        evalue: Optional[float] = None,
        max_results: Optional[int] = None,
        compute_alignments: bool = False,
        timeout: Optional[float] = None,
        backend=None,
        tracer=None,
    ) -> "BatchSearchReport":
        """Run a batch of queries concurrently over the shared index.

        Fans the queries out on an execution backend (``backend`` spec, or
        ``workers`` threads by default -- threads, not processes: expansion
        is NumPy-bound and the index is shared) and returns a
        :class:`~repro.parallel.BatchSearchReport` with per-query results in
        input order plus aggregated statistics.  ``timeout`` is a per-query
        wall-clock budget in seconds; a query exceeding it stops early with
        the hits found so far and is flagged ``timed_out``.

        For streaming consumption (results as they complete), use
        :class:`repro.parallel.BatchSearchExecutor` directly.
        """
        from repro.parallel.executor import BatchSearchExecutor

        executor = BatchSearchExecutor.for_engine(
            self,
            workers=workers,
            timeout=timeout,
            backend=backend,
            min_score=min_score,
            evalue=evalue,
            max_results=max_results,
            compute_alignments=compute_alignments,
            tracer=tracer,
        )
        return executor.run(queries)

    def _resolve_threshold(
        self, query: str, min_score: Optional[int], evalue: Optional[float]
    ) -> int:
        if (min_score is None) == (evalue is None):
            raise ValueError("specify exactly one of min_score or evalue")
        if min_score is not None:
            if min_score < 1:
                raise ValueError("min_score must be at least 1")
            return min_score
        assert evalue is not None
        return self.min_score_for(query, evalue)

    def __repr__(self) -> str:
        return (
            f"OasisEngine(database={self.database.name!r}, matrix={self.matrix.name!r}, "
            f"index={type(self.cursor).__name__})"
        )
